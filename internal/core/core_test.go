package core

import (
	"strings"
	"testing"

	"vmsh/internal/blockdev"
	"vmsh/internal/fsimage"
	"vmsh/internal/guestos"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
)

// buildToolImage creates the attachable fs image on the host disk.
func buildToolImage(t *testing.T, h *hostsim.Host, name string) *hostsim.HostFile {
	t.Helper()
	img := h.CreateFile(name, 96<<20, false)
	if err := fsimage.Build(blockdev.NewHostFileDevice(img), fsimage.ToolImage()); err != nil {
		t.Fatal(err)
	}
	return img
}

func launch(t *testing.T, kind hypervisor.Kind, kernel string) (*hostsim.Host, *hypervisor.Instance) {
	t.Helper()
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:          kind,
		KernelVersion: kernel,
		RootFS:        fsimage.GuestRoot("guest-under-test"),
		Seed:          1234,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, inst
}

func attach(t *testing.T, h *hostsim.Host, inst *hypervisor.Instance, opts Options) *Session {
	t.Helper()
	if opts.Image == nil && !opts.Minimal {
		opts.Image = buildToolImage(t, h, "tools.img")
	}
	v := New(h)
	sess, err := v.Attach(inst.Proc.PID, opts)
	if err != nil {
		t.Fatalf("attach: %v (guest log: %v)", err, inst.Kernel.Log)
	}
	return sess
}

func TestAttachEndToEnd(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{})

	if inst.Kernel.Panicked != nil {
		t.Fatalf("guest panicked: %v", inst.Kernel.Panicked)
	}
	if sess.Version().String() != "5.10" {
		t.Fatalf("detected version %s", sess.Version())
	}

	// The overlay shell answers over the console.
	out, err := sess.Exec("echo hello from the overlay")
	if err != nil {
		t.Fatalf("%v (out=%q)", err, out)
	}
	if !strings.Contains(out, "hello from the overlay") {
		t.Fatalf("echo output: %q", out)
	}

	// The overlay root is the tool image; the guest root is visible
	// under /var/lib/vmsh (§4.4).
	out, _ = sess.Exec("cat /var/lib/vmsh/etc/hostname")
	if !strings.Contains(out, "guest-under-test") {
		t.Fatalf("guest root not re-exposed: %q", out)
	}

	// Tools exist in the overlay even though the guest root lacks
	// them.
	out, _ = sess.Exec("ls /bin")
	if !strings.Contains(out, "sha256sum") {
		t.Fatalf("tool image incomplete: %q", out)
	}

	// vmsh-blk really served the overlay's IO.
	if sess.BlkRequests() == 0 {
		t.Fatal("no requests reached vmsh-blk")
	}
}

func TestAttachAllSupportedHypervisors(t *testing.T) {
	// Table 1: QEMU, kvmtool, Firecracker (filters off), crosvm work.
	cases := []struct {
		kind           hypervisor.Kind
		disableSeccomp bool
	}{
		{hypervisor.QEMU, false},
		{hypervisor.Kvmtool, false},
		{hypervisor.Firecracker, true},
		{hypervisor.Crosvm, false},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			h := hostsim.NewHost()
			inst, err := hypervisor.Launch(h, hypervisor.Config{
				Kind:           tc.kind,
				RootFS:         fsimage.GuestRoot("x"),
				DisableSeccomp: tc.disableSeccomp,
			})
			if err != nil {
				t.Fatal(err)
			}
			sess := attach(t, h, inst, Options{})
			out, err := sess.Exec("uname -r")
			if err != nil || !strings.Contains(out, "5.10") {
				t.Fatalf("uname via console: %q, %v", out, err)
			}
		})
	}
}

func TestAttachFirecrackerSeccompFails(t *testing.T) {
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:   hypervisor.Firecracker,
		RootFS: fsimage.GuestRoot("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v := New(h)
	if _, err := v.Attach(inst.Proc.PID, Options{Minimal: true}); err == nil {
		t.Fatal("attach succeeded despite seccomp filters")
	}
}

func TestAttachCloudHypervisorUnsupported(t *testing.T) {
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:   hypervisor.CloudHypervisor,
		RootFS: fsimage.GuestRoot("x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v := New(h)
	_, err = v.Attach(inst.Proc.PID, Options{Minimal: true})
	if err == nil {
		t.Fatal("attach to Cloud Hypervisor succeeded")
	}
	if !strings.Contains(err.Error(), "MSI-X") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
}

func TestAttachAllLTSKernels(t *testing.T) {
	// Table 1: v5.10, v5.4, v4.19, v4.14, v4.9, v4.4 — three ksymtab
	// layouts, two kernel_read/write signatures, two struct layouts.
	for _, ver := range guestos.LTSVersions {
		t.Run(ver, func(t *testing.T) {
			h, inst := launch(t, hypervisor.QEMU, ver)
			sess := attach(t, h, inst, Options{})
			out, err := sess.Exec("uname -r")
			if err != nil || !strings.Contains(out, ver) {
				t.Fatalf("kernel %s: %q, %v (log %v)", ver, out, err, inst.Kernel.Log)
			}
		})
	}
}

func TestAttachBothTrapModes(t *testing.T) {
	for _, trap := range []TrapMode{TrapIoregionfd, TrapWrapSyscall} {
		t.Run(trap.String(), func(t *testing.T) {
			h, inst := launch(t, hypervisor.QEMU, "5.10")
			sess := attach(t, h, inst, Options{Trap: trap})
			if _, err := sess.Exec("echo ping"); err != nil {
				t.Fatal(err)
			}
			// ioregionfd leaves no tracer behind; wrap_syscall keeps
			// one (and taxes the hypervisor).
			if trap == TrapIoregionfd && inst.Proc.Traced() {
				t.Fatal("tracer still attached after ioregionfd setup")
			}
			if trap == TrapWrapSyscall && !inst.Proc.SyscallTaxed() {
				t.Fatal("wrap_syscall tax inactive")
			}
		})
	}
}

func TestDetach(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{Trap: TrapWrapSyscall})
	if _, err := sess.Exec("echo alive"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	if inst.Proc.Traced() {
		t.Fatal("still traced after detach")
	}
	// Guest-side devices are unregistered.
	if _, ok := inst.Kernel.BlockDevByName("vmshblk0"); ok {
		t.Fatal("vmshblk0 survives detach")
	}
	if _, ok := inst.Kernel.TTYByName("hvc-vmsh"); ok {
		t.Fatal("console tty survives detach")
	}
	// Overlay processes are gone.
	for _, p := range inst.Kernel.Procs() {
		if p.Container == "vmsh-overlay" {
			t.Fatal("overlay process survives detach")
		}
	}
	if _, err := sess.Exec("echo dead"); err == nil {
		t.Fatal("exec after detach succeeded")
	}
	// Detach is idempotent.
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
}

func TestGuestUnaffectedFunctionally(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	p := inst.NewGuestProc("app")
	if err := p.WriteFile("/app-data", []byte("before"), 0o644); err != nil {
		t.Fatal(err)
	}
	sess := attach(t, h, inst, Options{})
	// Existing guest processes keep their namespace: no /bin tools
	// appear, the original root is still "/".
	if _, err := p.Stat("/bin/sha256sum"); err == nil {
		t.Fatal("overlay leaked into existing guest process")
	}
	got, err := p.ReadFile("/app-data")
	if err != nil || string(got) != "before" {
		t.Fatalf("guest file damaged: %q %v", got, err)
	}
	// And the overlay can still write to the guest via /var/lib/vmsh.
	if _, err := sess.Exec("echo patched > /var/lib/vmsh/app-data"); err != nil {
		t.Fatal(err)
	}
	got, _ = p.ReadFile("/app-data")
	if !strings.Contains(string(got), "patched") {
		t.Fatalf("overlay write not visible to guest: %q", got)
	}
}

func TestAttachContainerContext(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	ct := inst.Kernel.StartContainer(guestos.ContainerSpec{
		Name: "web", Comm: "nginx", UID: 101, GID: 101,
		Caps: []string{"CAP_NET_BIND_SERVICE"}, Cgroup: "/docker/web",
		Seccomp: "runtime/default", AppArmor: "docker-default",
	})
	sess := attach(t, h, inst, Options{ContainerPID: ct.PID})
	out, err := sess.Exec("id")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uid=101", "CAP_NET_BIND_SERVICE", "/docker/web", "runtime/default"} {
		if !strings.Contains(out, want) {
			t.Fatalf("container context not adopted: %q (want %s)", out, want)
		}
	}
}

func TestAttachMinimalNoOverlay(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{Minimal: true})
	// Devices exist, but no overlay shell was spawned.
	if _, ok := inst.Kernel.BlockDevByName("vmshblk0"); !ok {
		t.Fatal("vmshblk0 missing")
	}
	for _, p := range inst.Kernel.Procs() {
		if p.Container == "vmsh-overlay" {
			t.Fatal("overlay spawned in minimal mode")
		}
	}
	_ = sess
}

func TestPrivilegeDropAfterProbe(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	v := New(h)
	img := buildToolImage(t, h, "tools.img")
	if _, err := v.Attach(inst.Proc.PID, Options{Image: img}); err != nil {
		t.Fatal(err)
	}
	// CAP_BPF is gone: re-attaching the probe must fail (§4.5 / D5).
	if _, err := h.AttachKProbe(v.Proc, "kvm_vm_ioctl", func(any) {}); err == nil {
		t.Fatal("CAP_BPF survived the privilege drop")
	}
	if !v.Proc.Creds.Has(hostsim.CapSysPtrace) {
		t.Fatal("ptrace capability should remain")
	}
}

func TestAttachNonHypervisorFails(t *testing.T) {
	h := hostsim.NewHost()
	plain := h.NewProcess("nginx", hostsim.Creds{UID: 1000, Caps: map[hostsim.Capability]bool{}})
	v := New(h)
	if _, err := v.Attach(plain.PID, Options{Minimal: true}); err == nil {
		t.Fatal("attached to a non-hypervisor")
	}
}

func TestGuestLogShowsVMSH(t *testing.T) {
	// §4.1: VMSH's execution is intentionally visible in the guest's
	// kernel log.
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	_ = attach(t, h, inst, Options{})
	joined := strings.Join(inst.Kernel.Log, "\n")
	for _, want := range []string{"side-loaded library", "virtio-blk", "virtio-console", "vmsh-overlay"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("kernel log missing %q:\n%s", want, joined)
		}
	}
}

func TestShaOverConsole(t *testing.T) {
	// The sustained-load path: checksum a large file on the guest
	// root through the overlay.
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{})
	out, err := sess.Exec("sha256sum /var/lib/vmsh/app/server")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "/var/lib/vmsh/app/server") || len(strings.Fields(out)) != 2 {
		t.Fatalf("sha output: %q", out)
	}
	if len(strings.Fields(out)[0]) != 64 {
		t.Fatalf("not a sha256: %q", out)
	}
}
