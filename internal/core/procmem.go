package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"vmsh/internal/hostsim"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
	"vmsh/internal/obs"
)

// procMem is VMSH's view of guest physical memory: every access is a
// process_vm_readv/writev into the hypervisor's mapping of the guest,
// translated through the memslot table recovered by the eBPF probe.
// No data caching — the guest mutates these bytes concurrently
// (virtqueue indices), so reads must always hit the live mapping. The
// translation table itself is stable between slot registrations, so
// lookups use a sorted-slot binary search with a last-hit cache:
// device traffic is heavily clustered (ring pages, then data pages in
// the same slot), making the cache hit on almost every access.
type procMem struct {
	host  *hostsim.Host
	self  *hostsim.Process
	pid   int
	slots []kvm.MemSlotInfo // sorted by GPA, non-overlapping

	lastHit atomic.Int64 // index of the slot that served the last lookup

	// Fast-path observability: session-registry counters (read via
	// snapshot in Session.Stats and Session.Metrics).
	calls        *obs.Counter // process_vm_* syscalls issued
	bytesRead    *obs.Counter
	bytesWritten *obs.Counter
}

func newProcMem(host *hostsim.Host, self *hostsim.Process, pid int, slots []kvm.MemSlotInfo, reg *obs.Registry) *procMem {
	pm := &procMem{host: host, self: self, pid: pid,
		calls:        reg.Counter("procvm.calls"),
		bytesRead:    reg.Counter("procvm.bytes_read"),
		bytesWritten: reg.Counter("procvm.bytes_written"),
	}
	for _, s := range slots {
		pm.addSlot(s)
	}
	return pm
}

// addSlot extends the translator after VMSH installs its own memslot,
// keeping the table sorted so lookups can bisect.
func (pm *procMem) addSlot(s kvm.MemSlotInfo) {
	i := sort.Search(len(pm.slots), func(i int) bool { return pm.slots[i].GPA > s.GPA })
	pm.slots = append(pm.slots, kvm.MemSlotInfo{})
	copy(pm.slots[i+1:], pm.slots[i:])
	pm.slots[i] = s
	pm.lastHit.Store(0)
}

// removeSlot drops a slot from the translator (rollback of addSlot,
// after the memslot itself was deleted from the VM).
func (pm *procMem) removeSlot(slot uint32) {
	for i, s := range pm.slots {
		if s.Slot == slot {
			pm.slots = append(pm.slots[:i], pm.slots[i+1:]...)
			pm.lastHit.Store(0)
			return
		}
	}
}

// slotFor returns the index of the slot containing gpa, or -1.
func (pm *procMem) slotFor(gpa mem.GPA) int {
	if i := int(pm.lastHit.Load()); i < len(pm.slots) {
		if s := pm.slots[i]; gpa >= s.GPA && uint64(gpa-s.GPA) < s.Size {
			return i
		}
	}
	// First slot starting beyond gpa; the candidate is its predecessor.
	i := sort.Search(len(pm.slots), func(i int) bool { return pm.slots[i].GPA > gpa }) - 1
	if i < 0 {
		return -1
	}
	if s := pm.slots[i]; uint64(gpa-s.GPA) < s.Size {
		pm.lastHit.Store(int64(i))
		return i
	}
	return -1
}

// resolve translates [gpa, gpa+n) into host-virtual segments,
// splitting the range wherever it crosses from one memslot into the
// next. GPA-adjacent slots need not be HVA-adjacent (hypervisors mmap
// each region independently), which is why a straddling access must
// become multiple iovec segments rather than one long copy.
func (pm *procMem) resolve(gpa mem.GPA, n int, out []hostsim.IoVec, buf []byte) ([]hostsim.IoVec, error) {
	for n > 0 {
		i := pm.slotFor(gpa)
		if i < 0 {
			return nil, fmt.Errorf("vmsh: gpa [%#x,+%d) not in any memslot", gpa, n)
		}
		s := pm.slots[i]
		off := uint64(gpa - s.GPA)
		chunk := int(s.Size - off)
		if chunk > n {
			chunk = n
		}
		out = append(out, hostsim.IoVec{HVA: s.HVA + mem.HVA(off), Buf: buf[:chunk]})
		gpa += mem.GPA(chunk)
		buf = buf[chunk:]
		n -= chunk
	}
	return out, nil
}

// hvaFor is the single-segment translation used by callers that need a
// raw HVA (eventfd signal pages); it still rejects straddling ranges
// because a single address cannot represent them.
func (pm *procMem) hvaFor(gpa mem.GPA, n int) (mem.HVA, error) {
	i := pm.slotFor(gpa)
	if i < 0 {
		return 0, fmt.Errorf("vmsh: gpa [%#x,+%d) not in any memslot", gpa, n)
	}
	s := pm.slots[i]
	if uint64(gpa-s.GPA)+uint64(n) > s.Size {
		return 0, fmt.Errorf("vmsh: gpa [%#x,+%d) straddles memslot boundary", gpa, n)
	}
	return s.HVA + mem.HVA(gpa-s.GPA), nil
}

// ReadPhys implements mem.PhysReader. A range inside one slot issues
// exactly one scalar process_vm_readv (the pre-fast-path behaviour);
// a range straddling slots becomes one vectored call.
func (pm *procMem) ReadPhys(gpa mem.GPA, buf []byte) error {
	return pm.ReadPhysVec([]mem.Vec{{GPA: gpa, Buf: buf}})
}

// WritePhys implements mem.PhysWriter.
func (pm *procMem) WritePhys(gpa mem.GPA, buf []byte) error {
	return pm.WritePhysVec([]mem.Vec{{GPA: gpa, Buf: buf}})
}

// ReadPhysVec implements mem.PhysVecReader: all segments of all vecs
// are fetched by a single simulated process_vm_readv, paying one
// syscall + one base cost + bandwidth over the total byte count.
func (pm *procMem) ReadPhysVec(vecs []mem.Vec) error {
	iovs, err := pm.resolveVecs(vecs)
	if err != nil {
		return err
	}
	if err := pm.host.ProcessVMReadv(pm.self, pm.pid, iovs); err != nil {
		return err
	}
	pm.calls.Add(1)
	pm.bytesRead.Add(int64(mem.VecTotal(vecs)))
	return nil
}

// WritePhysVec implements mem.PhysVecWriter.
func (pm *procMem) WritePhysVec(vecs []mem.Vec) error {
	iovs, err := pm.resolveVecs(vecs)
	if err != nil {
		return err
	}
	if err := pm.host.ProcessVMWritev(pm.self, pm.pid, iovs); err != nil {
		return err
	}
	pm.calls.Add(1)
	pm.bytesWritten.Add(int64(mem.VecTotal(vecs)))
	return nil
}

func (pm *procMem) resolveVecs(vecs []mem.Vec) ([]hostsim.IoVec, error) {
	iovs := make([]hostsim.IoVec, 0, len(vecs))
	var err error
	for _, v := range vecs {
		iovs, err = pm.resolve(v.GPA, len(v.Buf), iovs, v.Buf)
		if err != nil {
			return nil, err
		}
	}
	return iovs, nil
}

// maxGPAEnd returns the highest in-use guest physical address; VMSH
// allocates its slot above it (§4.2: hypervisors allocate low to
// high, so the top of the address space is free).
func (pm *procMem) maxGPAEnd() mem.GPA {
	var max mem.GPA
	for _, s := range pm.slots {
		if end := s.GPA + mem.GPA(s.Size); end > max {
			max = end
		}
	}
	return max
}
