package core

import (
	"fmt"

	"vmsh/internal/hostsim"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
)

// procMem is VMSH's view of guest physical memory: every access is a
// process_vm_readv/writev into the hypervisor's mapping of the guest,
// translated through the memslot table recovered by the eBPF probe.
// No caching — the guest mutates these bytes concurrently (virtqueue
// indices), so reads must always hit the live mapping.
type procMem struct {
	host  *hostsim.Host
	self  *hostsim.Process
	pid   int
	slots []kvm.MemSlotInfo
}

func (pm *procMem) hvaFor(gpa mem.GPA, n int) (mem.HVA, error) {
	for _, s := range pm.slots {
		if gpa >= s.GPA && uint64(gpa-s.GPA)+uint64(n) <= s.Size {
			return s.HVA + mem.HVA(gpa-s.GPA), nil
		}
	}
	return 0, fmt.Errorf("vmsh: gpa [%#x,+%d) not in any memslot", gpa, n)
}

// ReadPhys implements mem.PhysReader.
func (pm *procMem) ReadPhys(gpa mem.GPA, buf []byte) error {
	hva, err := pm.hvaFor(gpa, len(buf))
	if err != nil {
		return err
	}
	return pm.host.ProcessVMRead(pm.self, pm.pid, hva, buf)
}

// WritePhys implements mem.PhysWriter.
func (pm *procMem) WritePhys(gpa mem.GPA, buf []byte) error {
	hva, err := pm.hvaFor(gpa, len(buf))
	if err != nil {
		return err
	}
	return pm.host.ProcessVMWrite(pm.self, pm.pid, hva, buf)
}

// addSlot extends the translator after VMSH installs its own memslot.
func (pm *procMem) addSlot(s kvm.MemSlotInfo) { pm.slots = append(pm.slots, s) }

// maxGPAEnd returns the highest in-use guest physical address; VMSH
// allocates its slot above it (§4.2: hypervisors allocate low to
// high, so the top of the address space is free).
func (pm *procMem) maxGPAEnd() mem.GPA {
	var max mem.GPA
	for _, s := range pm.slots {
		if end := s.GPA + mem.GPA(s.Size); end > max {
			max = end
		}
	}
	return max
}
