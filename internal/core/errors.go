package core

import (
	"errors"
	"fmt"
)

// Typed attach failures. Every error Attach returns wraps exactly one
// of these sentinels inside an *AttachError carrying the transaction
// stage it failed in, so callers can branch with errors.Is/errors.As
// instead of matching message substrings.
var (
	// ErrNoProcess: the pid does not exist on the simulated host.
	ErrNoProcess = errors.New("no such process")
	// ErrNotHypervisor: the process has no KVM VM/vCPU fds.
	ErrNotHypervisor = errors.New("does not look like a KVM hypervisor")
	// ErrNoMemslots: the eBPF kvm_vm_ioctl probe fired but reported an
	// empty memslot table.
	ErrNoMemslots = errors.New("eBPF probe saw no memslots")
	// ErrKernelNotFound: no kernel-sized mapping in the KASLR window.
	ErrKernelNotFound = errors.New("no kernel image found in KASLR range")
	// ErrKsymNotFound: the ksymtab scan (or a later relocation lookup)
	// could not resolve a required exported symbol.
	ErrKsymNotFound = errors.New("ksymtab symbol resolution failed")
	// ErrLibraryFailed: the side-loaded library started but reported an
	// error status (or never became ready) on the sync page.
	ErrLibraryFailed = errors.New("guest library failed")
	// ErrNoImage: no filesystem image supplied for a non-Minimal attach.
	ErrNoImage = errors.New("an fs image is required unless Minimal")
)

// AttachError is the typed failure Attach returns: which transaction
// stage failed, for which hypervisor pid, wrapping the underlying
// cause. By the time the caller sees it, the attach transaction has
// already rolled the guest back to its pre-attach state.
type AttachError struct {
	// Stage is the attach-transaction stage name (fd_discovery,
	// ptrace_interrupt, memslot_probe, kernel_scan, build_blob,
	// inject_library, setup_devices, rip_flip). Empty when the failure
	// precedes the transaction (unknown pid).
	Stage string
	// PID is the hypervisor process the attach targeted.
	PID int
	// Err is the underlying cause; AttachError unwraps to it, so
	// errors.Is sees the sentinels above and any fault sentinel
	// (faults.EINTR, hostsim.ErrPerm, ...) in the chain.
	Err error
}

// Error implements error.
func (e *AttachError) Error() string {
	if e.Stage == "" {
		return fmt.Sprintf("vmsh: attach pid %d: %v", e.PID, e.Err)
	}
	return fmt.Sprintf("vmsh: attach pid %d failed at %s: %v", e.PID, e.Stage, e.Err)
}

// Unwrap implements the errors.Is/As chain.
func (e *AttachError) Unwrap() error { return e.Err }
