package core

import (
	"fmt"
	"strings"
	"testing"

	"vmsh/internal/fsimage"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
	"vmsh/internal/netsim"
)

// attachNetPair launches two QEMU guests on one host, attaches VMSH to
// both with a shared switch, and returns everything a network test
// needs. Each session's vmsh-net device lives on the VMSH side of the
// process boundary: it only ever sees guest memory through procmem.
func attachNetPair(t *testing.T, linkA, linkB netsim.LinkParams) (*hostsim.Host, *netsim.Switch, [2]*hypervisor.Instance, [2]*Session) {
	t.Helper()
	h := hostsim.NewHost()
	sw := netsim.New(h.Clock, h.Costs)

	var insts [2]*hypervisor.Instance
	var sessions [2]*Session
	links := [2]netsim.LinkParams{linkA, linkB}
	for i := 0; i < 2; i++ {
		inst, err := hypervisor.Launch(h, hypervisor.Config{
			Kind:          hypervisor.QEMU,
			Name:          fmt.Sprintf("qemu-%c", 'a'+i),
			KernelVersion: "5.10",
			RootFS:        fsimage.GuestRoot(fmt.Sprintf("guest-%c", 'a'+i)),
			Seed:          int64(1234 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst
		img := buildToolImage(t, h, fmt.Sprintf("tools-%c.img", 'a'+i))
		sessions[i] = attach(t, h, inst, Options{Image: img, Net: sw, NetLink: links[i]})
	}
	return h, sw, insts, sessions
}

// guestIP asks the guest shell for its interface address.
func guestIP(t *testing.T, sess *Session) string {
	t.Helper()
	out, err := sess.Exec("ifconfig")
	if err != nil {
		t.Fatalf("ifconfig: %v (out %q)", err, out)
	}
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "10.0.0.") {
			return f
		}
	}
	t.Fatalf("no 10.0.0.x address in ifconfig output %q", out)
	return ""
}

func TestAttachWithNetRegistersIface(t *testing.T) {
	_, _, insts, sessions := attachNetPair(t, netsim.LinkParams{}, netsim.LinkParams{})

	for i, inst := range insts {
		joined := strings.Join(inst.Kernel.Log, "\n")
		if !strings.Contains(joined, "virtio-net device vmsh0") {
			t.Fatalf("guest %d log missing net device:\n%s", i, joined)
		}
		if _, ok := inst.Kernel.IfaceByName("vmsh0"); !ok {
			t.Fatalf("guest %d has no vmsh0 iface", i)
		}
		if sessions[i].NetPort() == nil {
			t.Fatalf("session %d has no switch port", i)
		}
	}
	// Deterministic port MACs give deterministic IPs.
	if guestIP(t, sessions[0]) == guestIP(t, sessions[1]) {
		t.Fatal("both guests share one IP")
	}
}

func TestTwoVMPingOverCore(t *testing.T) {
	h, sw, _, sessions := attachNetPair(t, netsim.LinkParams{}, netsim.LinkParams{})

	peer := guestIP(t, sessions[1])
	start := h.Clock.Now()
	out, err := sessions[0].Exec("ping " + peer + " 3")
	if err != nil {
		t.Fatalf("ping: %v (out %q)", err, out)
	}
	if !strings.Contains(out, "3 packets transmitted, 3 received, 0% packet loss") {
		t.Fatalf("ping output %q", out)
	}
	if h.Clock.Since(start) <= 0 {
		t.Fatal("ping consumed no virtual time")
	}
	st := sw.Stats()
	if st.Forwarded+st.Flooded < 6 {
		t.Fatalf("switch saw too few frames: %+v", st)
	}
	// Frames really crossed each session's port.
	for i, s := range sessions {
		ps := s.NetPort().Stats()
		if ps.TxFrames == 0 || ps.RxFrames == 0 {
			t.Fatalf("port %d stats %+v", i, ps)
		}
	}
}

func TestTwoVMIperfOverCore(t *testing.T) {
	_, _, _, sessions := attachNetPair(t, netsim.LinkParams{}, netsim.LinkParams{})

	peer := guestIP(t, sessions[1])
	out, err := sessions[0].Exec("iperf " + peer + " 1")
	if err != nil {
		t.Fatalf("iperf: %v (out %q)", err, out)
	}
	if !strings.Contains(out, "MB/s") {
		t.Fatalf("iperf output %q", out)
	}
}

func TestNetLinkParamsShapeTraffic(t *testing.T) {
	// A slower link must cost more virtual time for the same ping.
	rtt := func(link netsim.LinkParams) string {
		h, _, _, sessions := attachNetPair(t, link, netsim.LinkParams{})
		peer := guestIP(t, sessions[1])
		start := h.Clock.Now()
		if out, err := sessions[0].Exec("ping " + peer + " 1"); err != nil ||
			!strings.Contains(out, "1 received") {
			t.Fatalf("ping: %v %q", err, out)
		}
		return h.Clock.Since(start).String()
	}
	fast := rtt(netsim.LinkParams{})
	slow := rtt(netsim.LinkParams{BandwidthBps: 1e6, Latency: 2e6})
	if fast == slow {
		t.Fatalf("link params had no effect: fast %s slow %s", fast, slow)
	}
}

func TestAttachWithoutNetHasNoPort(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{})
	if sess.NetPort() != nil {
		t.Fatal("port exists without Options.Net")
	}
	if _, ok := inst.Kernel.IfaceByName("vmsh0"); ok {
		t.Fatal("vmsh0 iface registered without Options.Net")
	}
	out, _ := sess.Exec("ifconfig")
	if !strings.Contains(out, "no interfaces") {
		t.Fatalf("ifconfig on netless guest: %q", out)
	}
}
