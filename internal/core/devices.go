package core

import (
	"errors"
	"fmt"
	"time"

	"vmsh/internal/faults"
	"vmsh/internal/hostsim"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
	"vmsh/internal/obs"
	"vmsh/internal/storage"
	"vmsh/internal/vclock"
	"vmsh/internal/virtio"
)

// fileStore adapts the memory-mapped host image file to the
// storage.BlockBackend contract with zero charging of its own — the
// page-cache and device costs stay in mmapBackend, exactly where they
// were, so the default data path's virtual-time behaviour is
// bit-identical to the pre-refactor direct access.
type fileStore struct {
	f *hostsim.HostFile
}

func (s *fileStore) ReadAt(off int64, buf []byte) error {
	copy(buf, s.f.Bytes()[off:])
	return nil
}

func (s *fileStore) WriteAt(off int64, buf []byte) error {
	copy(s.f.Bytes()[off:], buf)
	return nil
}

func (s *fileStore) Flush() error      { return nil }
func (s *fileStore) Size() int64       { return s.f.Size() }
func (s *fileStore) SupportsFUA() bool { return true }
func (s *fileStore) SetQueueDepth(int) {}

// mmapBackend serves the vmsh-blk image from a memory-mapped host
// file — the optimisation §5 credits with doubling Phoronix results.
// Reads hit the host page cache (device reads only on first touch);
// writes land in the cache and are charged at steady-state writeback
// bandwidth once, at write time (the background flusher's work,
// attributed to the writer the way dirty throttling does).
//
// The byte store behind the cache model is pluggable
// (Options.Storage): the default fileStore reproduces the historic
// direct-mmap access byte-for-byte and charge-for-charge; the
// storage-package backends (memory, cow, cas, remote) swap the medium
// while this layer keeps the page-cache accounting.
type mmapBackend struct {
	store storage.BlockBackend
	size  int64
	host  *hostsim.Host
	// resident tracks which 4 KiB pages of the image live in the
	// host page cache.
	resident map[int64]bool
	// bounce emulates the unoptimised pre-§5 data path: an extra
	// read/write syscall pair and buffer copy per access (kept for
	// the D2 ablation benchmark).
	bounce bool
}

const mmapPage = 4096

// touch accounts page-cache handling for [off, off+n), returning how
// many bytes were not yet resident.
func (m *mmapBackend) touch(off int64, n int) int {
	first, last := off/mmapPage, (off+int64(n)-1)/mmapPage
	missBytes := 0
	for p := first; p <= last; p++ {
		if !m.resident[p] {
			m.resident[p] = true
			missBytes += mmapPage
		}
	}
	c := m.host.Costs
	m.host.Clock.Advance(time.Duration(last-first+1) * c.PageCacheHit)
	return missBytes
}

// chargeBounce models the pre-optimisation data path (§5): instead of
// one process_vm copy straight between guest memory and the mapped
// image, the device read()/write()s the image in filesystem-block
// units through a bounce buffer — a syscall pair per block plus a
// second full copy of the payload.
func (m *mmapBackend) chargeBounce(n int) {
	blocks := (n + mmapPage - 1) / mmapPage
	c := m.host.Costs
	m.host.Clock.Advance(time.Duration(blocks)*2*c.Syscall + vclock.Copy(n, c.ProcessVMBW))
}

// ReadBlk implements virtio.BlkBackend.
func (m *mmapBackend) ReadBlk(off int64, buf []byte) error {
	if m.bounce {
		m.chargeBounce(len(buf))
	}
	if miss := m.touch(off, len(buf)); miss > 0 {
		m.host.Disk.ChargeRead(miss)
	}
	return m.store.ReadAt(off, buf)
}

// WriteBlk implements virtio.BlkBackend.
func (m *mmapBackend) WriteBlk(off int64, buf []byte) error {
	if m.bounce {
		m.chargeBounce(len(buf))
	}
	m.touch(off, len(buf))
	if err := m.store.WriteAt(off, buf); err != nil {
		return err
	}
	// Sustained writes are bounded by host writeback to the device.
	m.host.Disk.ChargeWrite(len(buf))
	return nil
}

// FlushBlk implements virtio.BlkBackend: writeback was already paid at
// write time, so a flush costs one device cache flush.
func (m *mmapBackend) FlushBlk() error {
	m.host.Disk.ChargeFlush()
	return m.store.Flush()
}

// Capacity implements virtio.BlkBackend.
func (m *mmapBackend) Capacity() int64 { return m.size }

// mmioMux routes the VMSH MMIO window to the right device. The net
// handler is nil when no switch was attached; accesses to its block
// then read as open bus (zero) instead of faulting.
type mmioMux struct {
	blk  kvm.MMIOHandler
	cons kvm.MMIOHandler
	net  kvm.MMIOHandler
}

// MMIO implements kvm.MMIOHandler.
func (m *mmioMux) MMIO(gpa mem.GPA, size int, write bool, value uint64) uint64 {
	switch {
	case gpa >= vmshNetBase:
		if m.net == nil {
			return 0
		}
		return m.net.MMIO(gpa, size, write, value)
	case gpa >= vmshConsBase:
		return m.cons.MMIO(gpa, size, write, value)
	default:
		return m.blk.MMIO(gpa, size, write, value)
	}
}

// setupDevices performs step 7 of Attach: eventfd + irqfd plumbing by
// injection, fd passing over an injected unix socket, trap
// installation and device hosting. Every side effect registers its
// compensation on the transaction, so both a failed attach and a
// clean detach unwind the same way.
func (s *Session) setupDevices(tx *attachTx, scratch uint64, opts Options) error {
	h := s.v.Host
	pid := s.target.PID

	image := opts.Image
	if image == nil {
		if !opts.Minimal {
			return ErrNoImage
		}
		image = h.CreateFile(fmt.Sprintf("vmsh-minimal-%d.img", pid), 1<<20, false)
	}

	// Unix socket for passing hypervisor-created fds back to us (§5).
	// The name carries an attach sequence number so re-attaching
	// after a detach never collides with a stale binding.
	sockPath := fmt.Sprintf("@vmsh-%d-%d", pid, h.NextAttachSeq())
	listener, err := h.BindUnix(s.v.Proc, sockPath)
	if err != nil {
		return err
	}
	tx.onUndo("unbind_socket", func() error { h.UnbindUnix(sockPath); return nil })

	// Create the two irq eventfds inside the hypervisor and register
	// them as irqfds for our GSIs.
	closeFD := func(name string, fd uint64) {
		tx.onUndo(name, func() error {
			_, err := tx.inject(hostsim.SysClose, fd)
			return err
		})
	}
	evBlk, err := tx.inject(hostsim.SysEventfd2, 0, 0)
	if err != nil {
		return err
	}
	closeFD("close_ev_blk", evBlk)
	evCons, err := tx.inject(hostsim.SysEventfd2, 0, 0)
	if err != nil {
		return err
	}
	closeFD("close_ev_cons", evCons)
	irqRegs := []struct {
		fd  uint64
		gsi uint32
	}{{evBlk, vmshBlkGSI}, {evCons, vmshConsGSI}}
	var evNet uint64
	if opts.Net != nil {
		if evNet, err = tx.inject(hostsim.SysEventfd2, 0, 0); err != nil {
			return err
		}
		closeFD("close_ev_net", evNet)
		irqRegs = append(irqRegs, struct {
			fd  uint64
			gsi uint32
		}{evNet, vmshNetGSI})
	}
	for _, reg := range irqRegs {
		irqfd := make([]byte, 16)
		putU32(irqfd[0:], uint32(reg.fd))
		putU32(irqfd[4:], reg.gsi)
		if opts.PCITransport {
			putU32(irqfd[8:], kvm.IrqfdFlagMSI)
		}
		if err := h.ProcessVMWrite(s.v.Proc, pid, mem.HVA(scratch), irqfd); err != nil {
			return err
		}
		if _, err := tx.inject(hostsim.SysIoctl, uint64(s.vmFD), kvm.KVMIrqfd, scratch); err != nil {
			return fmt.Errorf("vmsh: KVM_IRQFD (gsi %d): %w", reg.gsi, err)
		}
	}

	// Pass the eventfds back over the unix socket.
	sock, err := tx.inject(hostsim.SysSocket, 1, 1, 0)
	if err != nil {
		return err
	}
	closeFD("close_pass_sock", sock)
	if err := h.ProcessVMWrite(s.v.Proc, pid, mem.HVA(scratch)+128, []byte(sockPath)); err != nil {
		return err
	}
	if _, err := tx.inject(hostsim.SysConnect, sock, scratch+128, uint64(len(sockPath))); err != nil {
		return err
	}
	sendArgs := []uint64{sock, 0, 0, evBlk, evCons}
	wantFDs := 2
	if opts.Net != nil {
		sendArgs = append(sendArgs, evNet)
		wantFDs = 3
	}
	if _, err := tx.inject(hostsim.SysSendmsg, sendArgs...); err != nil {
		return err
	}
	conn, ok := listener.Accept()
	if !ok {
		return fmt.Errorf("vmsh: fd-passing connection missing")
	}
	_, rights, ok := conn.Recv()
	if !ok || len(rights) != wantFDs {
		return fmt.Errorf("vmsh: expected %d passed fds, got %d", wantFDs, len(rights))
	}
	s.blkEvFD = s.v.Proc.InstallFD(rights[0])
	s.consEvFD = s.v.Proc.InstallFD(rights[1])
	localFDs := []int{s.blkEvFD, s.consEvFD}
	if opts.Net != nil {
		s.netEvFD = s.v.Proc.InstallFD(rights[2])
		localFDs = append(localFDs, s.netEvFD)
	}
	tx.onUndo("close_local_evfds", func() error {
		for _, fd := range localFDs {
			_ = s.v.Proc.CloseFD(fd)
		}
		return nil
	})

	// A one-page buffer in our own address space for eventfd writes.
	sigHVA, err := s.v.Proc.Syscall(hostsim.SysMmap, 0, 4096, 3,
		hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0), 0)
	if err != nil {
		return err
	}
	tx.onUndo("munmap_sig_page", func() error {
		_, err := s.v.Proc.Syscall(hostsim.SysMunmap, sigHVA, 4096)
		return err
	})
	s.sigHVA = sigHVA
	_ = s.v.Proc.WriteMem(mem.HVA(sigHVA), hostsim.EncodeU64s(1))

	// Device instances, running in the VMSH process over the
	// process_vm view of guest memory. The image byte store is
	// selectable (Options.Storage); "" / "file" is the historic
	// direct-mmap path with unchanged charging.
	var store storage.BlockBackend = &fileStore{f: image}
	if opts.Storage != "" && opts.Storage != "file" {
		st, err := storage.OpenBlock(opts.Storage, storage.Config{
			Base:   store,
			Size:   image.Size(),
			Clock:  h.Clock,
			Costs:  h.Costs,
			Faults: h.Faults,
			Taps:   h.Taps(),
		})
		if err != nil {
			return fmt.Errorf("storage backend %q: %w", opts.Storage, err)
		}
		store = st
	}
	backend := &mmapBackend{store: store, size: store.Size(), host: h,
		resident: make(map[int64]bool), bounce: opts.BounceCopy}
	batch := !opts.LegacyVirtio
	s.blk = virtio.NewBlkDevice(vmshBlkBase, s.pm, backend, h.Clock, h.Costs)
	s.blk.Faults = h.Faults
	s.blk.Batch = batch
	s.blk.Dev.Trace = h.Trace.Track("dev:blk")
	s.blk.Dev.Taps, s.blk.Dev.TapOp = h.Taps(), faults.OpVQBlk
	s.blk.Dev.IRQs = s.reg.Counter("blk.irqs")
	// Queue 0 request latency: avail-publish to used-publish, vclock.
	s.blk.Dev.ReqLat = []*obs.Histogram{s.reg.Histogram("blk.req_vlat")}
	s.blk.SignalIRQ = func() {
		_, _ = s.v.Proc.Syscall(hostsim.SysWrite, uint64(s.blkEvFD), s.sigHVA, 8)
	}
	s.cons = virtio.NewConsoleDevice(vmshConsBase, s.pm)
	s.cons.Batch = batch
	s.cons.Dev.Trace = h.Trace.Track("dev:console")
	s.cons.Dev.Taps, s.cons.Dev.TapOp = h.Taps(), faults.OpVQCons
	s.cons.Dev.IRQs = s.reg.Counter("cons.irqs")
	ctrConsOut := s.reg.Counter("cons.bytes_from_guest")
	s.cons.Output = func(b []byte) {
		// Guest output wakes the blocked VMSH console reader.
		h.Clock.Advance(h.Costs.SchedWake)
		ctrConsOut.Add(int64(len(b)))
		s.out.Write(b)
	}
	s.cons.SignalIRQ = func() {
		_, _ = s.v.Proc.Syscall(hostsim.SysWrite, uint64(s.consEvFD), s.sigHVA, 8)
	}
	if opts.Net != nil {
		// Cable this VM into the switch: the port's deterministic MAC
		// becomes the device's config-space address, guest frames go
		// out through Port.Send and inbound frames arrive through
		// Deliver — all against the process_vm view of guest memory.
		port := opts.Net.NewPort(fmt.Sprintf("vmsh-pid%d", pid), opts.NetLink)
		s.netPort = port
		// Ports cannot be removed from a switch (later port IDs would
		// shift); unplugging the delivery sink is the rollback.
		tx.onUndo("unplug_net_port", func() error { port.Deliver = nil; return nil })
		opts.Net.SetFaults(h.Faults)
		opts.Net.SetTaps(h.Taps())
		s.net = virtio.NewNetDevice(vmshNetBase, [6]byte(port.MAC()), s.pm)
		s.net.Faults = h.Faults
		s.net.Batch = batch
		s.net.Dev.Trace = h.Trace.Track("dev:net")
		s.net.Dev.Taps, s.net.Dev.TapOp = h.Taps(), faults.OpVQNet
		s.net.Dev.IRQs = s.reg.Counter("net.irqs")
		// Tx queue latency (queue NetTxQ); the rx queue's fill spans
		// carry no request semantics, so no histogram for queue 0.
		lat := make([]*obs.Histogram, virtio.NetTxQ+1)
		lat[virtio.NetTxQ] = s.reg.Histogram("net.tx_vlat")
		s.net.Dev.ReqLat = lat
		ctrTxF := s.reg.Counter("net.tx_frames")
		ctrTxB := s.reg.Counter("net.tx_bytes")
		ctrRxF := s.reg.Counter("net.rx_frames")
		ctrRxB := s.reg.Counter("net.rx_bytes")
		s.net.SendFrame = func(f []byte) {
			ctrTxF.Inc()
			ctrTxB.Add(int64(len(f)))
			opts.Net.Send(port, f)
		}
		port.Deliver = func(f []byte) {
			ctrRxF.Inc()
			ctrRxB.Add(int64(len(f)))
			s.net.DeliverToGuest(f)
		}
		s.net.SignalIRQ = func() {
			_, _ = s.v.Proc.Syscall(hostsim.SysWrite, uint64(s.netEvFD), s.sigHVA, 8)
		}
	}
	mux := &mmioMux{blk: s.blk, cons: s.cons}
	if s.net != nil {
		mux.net = s.net
	}

	mode := s.trap
	if mode == TrapAuto {
		mode = TrapIoregionfd
	}
	if mode == TrapIoregionfd {
		err := s.setupIoregion(tx, scratch, sock, listener, conn, mux)
		switch {
		case err == nil:
			// fast path active
		case s.trap == TrapAuto && errors.Is(err, hostsim.ErrNoSys):
			// Host kernel lacks the ioregionfd patch — fall back to
			// the ptrace trap, as the real tool must on stock kernels.
			mode = TrapWrapSyscall
		default:
			return err
		}
	}
	if mode == TrapWrapSyscall {
		// Hook every hypervisor syscall via ptrace and claim our MMIO
		// window on KVM_RUN exits.
		vmfdObj, err := s.target.FD(s.vmFD)
		if err != nil {
			return err
		}
		vmFD, ok := vmfdObj.(*kvm.VMFD)
		if !ok {
			return fmt.Errorf("vmsh: fd %d is not a KVM VM", s.vmFD)
		}
		s.wrapVM = vmFD.VM
		tx.tracer.SetSyscallTax(true)
		s.wrapVM.SetWrapTrap(vmshBlkBase, vmshMMIOWindow, mux)
	}
	tx.onUndo("teardown_traps", func() error { s.teardownTraps(); return nil })
	s.trap = mode
	return nil
}

// decodePairFD reads one little-endian fd number out of a socketpair
// result buffer.
func decodePairFD(raw []byte, off int) uint64 {
	return uint64(raw[off]) | uint64(raw[off+1])<<8 | uint64(raw[off+2])<<16 | uint64(raw[off+3])<<24
}

// setupIoregion creates a socketpair inside the hypervisor, registers
// one end as the ioregionfd for the VMSH MMIO window, receives the
// other end over the unix socket and serves it.
func (s *Session) setupIoregion(tx *attachTx, scratch, sock uint64,
	listener *hostsim.UnixListener, conn *hostsim.SockPairFD, mux kvm.MMIOHandler) error {
	h := s.v.Host
	pid := s.target.PID

	if _, err := tx.inject(hostsim.SysSocketpair, 1, 1, 0, scratch+192); err != nil {
		return fmt.Errorf("vmsh: injected socketpair: %w", err)
	}
	// The undo is registered before the readback: if the read itself
	// faults, the pair must still be closed. The undo re-reads the fd
	// numbers from the scratch page (undo crossings run with the fault
	// plane paused, so this cannot fault recursively).
	tx.onUndo("close_ioregion_pair", func() error {
		raw := make([]byte, 8)
		if err := h.ProcessVMRead(s.v.Proc, pid, mem.HVA(scratch)+192, raw); err != nil {
			return err
		}
		_, e1 := tx.inject(hostsim.SysClose, decodePairFD(raw, 0))
		_, e2 := tx.inject(hostsim.SysClose, decodePairFD(raw, 4))
		if e1 != nil {
			return e1
		}
		return e2
	})
	pairRaw := make([]byte, 8)
	if err := h.ProcessVMRead(s.v.Proc, pid, mem.HVA(scratch)+192, pairRaw); err != nil {
		return err
	}
	rfd := decodePairFD(pairRaw, 0)
	sfd := decodePairFD(pairRaw, 4)

	ioregion := make([]byte, 40)
	putU64(ioregion[0:], uint64(vmshBlkBase))
	putU64(ioregion[8:], vmshMMIOWindow)
	putU32(ioregion[24:], uint32(rfd))
	if err := h.ProcessVMWrite(s.v.Proc, pid, mem.HVA(scratch), ioregion); err != nil {
		return err
	}
	if _, err := tx.inject(hostsim.SysIoctl, uint64(s.vmFD), kvm.KVMSetIoregion, scratch); err != nil {
		return fmt.Errorf("vmsh: KVM_SET_IOREGION: %w", err)
	}
	// Receive the serving end via the unix socket.
	if _, err := tx.inject(hostsim.SysSendmsg, sock, 0, 0, sfd); err != nil {
		return err
	}
	conn2, ok := listener.Accept()
	if !ok {
		conn2 = conn
	}
	_, rights2, ok := conn2.Recv()
	if !ok || len(rights2) != 1 {
		// The second sendmsg reuses the existing connection.
		_, rights2, ok = conn.Recv()
		if !ok || len(rights2) != 1 {
			return fmt.Errorf("vmsh: serving socket not passed")
		}
	}
	serveSock, okCast := rights2[0].(*hostsim.SockPairFD)
	if !okCast {
		return fmt.Errorf("vmsh: passed fd is %T, want socket", rights2[0])
	}
	serveFD := s.v.Proc.InstallFD(serveSock)
	tx.onUndo("close_serve_sock", func() error { return s.v.Proc.CloseFD(serveFD) })
	serveSock.SetHandler(mux)
	s.serveSock = serveSock
	return nil
}
