package core

import (
	"strings"
	"testing"

	"vmsh/internal/fsimage"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
)

// TestExtensionPCITransportCloudHypervisor exercises the
// virtio-over-PCI extension (§6.2 future work): with MSI-routed
// irqfds, the MSI-X-only irqchip accepts the registration and Cloud
// Hypervisor becomes attachable.
func TestExtensionPCITransportCloudHypervisor(t *testing.T) {
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:   hypervisor.CloudHypervisor,
		RootFS: fsimage.GuestRoot("chv"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Without the extension it still fails (Table 1).
	v := New(h)
	if _, err := v.Attach(inst.Proc.PID, Options{Minimal: true}); err == nil {
		t.Fatal("legacy gsi attach to Cloud Hypervisor succeeded")
	}

	// With it, the full flow works.
	h2 := hostsim.NewHost()
	inst2, err := hypervisor.Launch(h2, hypervisor.Config{
		Kind:   hypervisor.CloudHypervisor,
		RootFS: fsimage.GuestRoot("chv"),
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := attach(t, h2, inst2, Options{PCITransport: true})
	out, err := sess.Exec("cat /var/lib/vmsh/etc/hostname")
	if err != nil || !strings.Contains(out, "chv") {
		t.Fatalf("%q %v", out, err)
	}
}

// TestExtensionPCITransportOnGSIHypervisors: modern KVM accepts
// MSI-routed irqfds on ordinary VMs too, so the extension is safe to
// use everywhere.
func TestExtensionPCITransportOnGSIHypervisors(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{PCITransport: true})
	if _, err := sess.Exec("echo pci-ok"); err != nil {
		t.Fatal(err)
	}
}

// TestExtensionFirecrackerSeccompProfile exercises the
// "vmsh-compatible" filter set: attach succeeds with seccomp still
// armed, and the filters keep doing their job for everything else.
func TestExtensionFirecrackerSeccompProfile(t *testing.T) {
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:           hypervisor.Firecracker,
		RootFS:         fsimage.GuestRoot("fc"),
		SeccompProfile: "vmsh-compatible",
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Proc.Seccomp == nil {
		t.Fatal("filters were silently disabled")
	}
	sess := attach(t, h, inst, Options{})
	out, err := sess.Exec("uname -r")
	if err != nil || !strings.Contains(out, "5.10") {
		t.Fatalf("%q %v", out, err)
	}
	// The filter still blocks syscalls outside the profile.
	if _, err := inst.Proc.Syscall(hostsim.SysRecvmsg, 0, 0, 0); err != hostsim.ErrSeccomp {
		t.Fatalf("unlisted syscall not blocked: %v", err)
	}
}
