package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"vmsh/internal/guestlib"
	"vmsh/internal/guestos"
	"vmsh/internal/hostsim"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
	"vmsh/internal/netsim"
	"vmsh/internal/obs"
	"vmsh/internal/replay"
	"vmsh/internal/virtio"
)

// Session is a live attachment to a VM.
type Session struct {
	v      *VMSH
	target *hostsim.Process
	tracer *hostsim.Tracer // non-nil only in wrap_syscall mode
	pm     *procMem
	reg    *obs.Registry // session-scoped metrics (procvm, devices, net)

	vmFD    int
	vcpuFDs []int
	libGPA  mem.GPA
	libGVA  mem.GVA
	hdr     *guestlib.Header

	trap       TrapMode
	version    guestos.Version
	kernelBase mem.GVA

	// image/storage remember what the vmsh-blk device was serving so a
	// lifecycle operation (snapshot, migration) can quiesce the session
	// and re-attach an equivalent one on the restored VM. image is nil
	// for Minimal attaches.
	image   *hostsim.HostFile
	storage string

	blk  *virtio.BlkDevice
	cons *virtio.ConsoleDevice
	net  *virtio.NetDevice // nil unless Options.Net supplied a switch

	netPort *netsim.Port

	blkEvFD, consEvFD, netEvFD int
	sigHVA                     uint64
	wrapVM                     *kvm.VM
	// serveSock is the ioregionfd serving end; closing it (clearing
	// its handler) deregisters the MMIO routing kernel-side.
	serveSock *hostsim.SockPairFD

	// tx is the attach transaction whose undo stack still holds every
	// live compensation; Detach drains it so a detached guest is left
	// byte-identical to one that was never attached to.
	tx *attachTx

	// record/recordSink carry the crossing recording to finalize and
	// persist at Detach; tapped remembers that this attach armed the
	// host tap (record and/or verify) so Detach disarms it.
	record     *replay.Recorder
	recordSink func() (io.WriteCloser, error)
	tapped     bool

	out      bytes.Buffer
	detached bool
}

// Version reports the guest kernel version the sideloader detected.
func (s *Session) Version() guestos.Version { return s.version }

// Image returns the host file the vmsh-blk device serves (nil for
// Minimal attaches). Lifecycle operations copy it across hosts so a
// re-attached session sees the same overlay filesystem.
func (s *Session) Image() *hostsim.HostFile { return s.image }

// StorageBackend returns the Options.Storage name this session was
// attached with ("" = the historic direct-mmap file path).
func (s *Session) StorageBackend() string { return s.storage }

// KernelBase reports where KASLR put the guest kernel (diagnostics).
func (s *Session) KernelBase() mem.GVA { return s.kernelBase }

// Trap reports the active MMIO interception mechanism.
func (s *Session) Trap() TrapMode { return s.trap }

// readSync reads one word of the shared sync area via process_vm.
func (s *Session) readSync(word int) (uint64, error) {
	raw := make([]byte, 8)
	if err := s.pm.ReadPhys(s.libGPA+mem.GPA(s.hdr.SyncOff+uint64(word*8)), raw); err != nil {
		return 0, err
	}
	return hostsim.DecodeU64(raw, 0), nil
}

// writeSync writes one word of the shared sync area.
func (s *Session) writeSync(word int, val uint64) error {
	return s.pm.WritePhys(s.libGPA+mem.GPA(s.hdr.SyncOff+uint64(word*8)), hostsim.EncodeU64s(val))
}

// SendConsole delivers raw bytes to the guest console (keystrokes).
func (s *Session) SendConsole(data []byte) {
	s.reg.Counter("cons.bytes_to_guest").Add(int64(len(data)))
	s.cons.SendToGuest(data)
}

// Output returns everything the guest console produced so far.
func (s *Session) Output() string { return s.out.String() }

// Exec runs one shell command over the console and returns its output
// (without the trailing prompt).
func (s *Session) Exec(cmd string) (string, error) {
	if s.detached {
		return "", fmt.Errorf("vmsh: session detached")
	}
	mark := s.out.Len()
	s.SendConsole([]byte(cmd + "\n"))
	outSlice := s.out.String()[mark:]
	if !strings.HasSuffix(outSlice, guestos.Prompt) {
		return outSlice, fmt.Errorf("vmsh: shell did not return a prompt (got %q)", outSlice)
	}
	return strings.TrimSuffix(outSlice, guestos.Prompt), nil
}

// BlkRequests reports how many requests the vmsh-blk device served.
func (s *Session) BlkRequests() int64 { return s.blk.Requests }

// Stats is a snapshot of the session's guest-memory traffic counters:
// how many simulated process_vm_readv/writev calls VMSH issued, how
// many bytes they moved, and how many interrupts the hosted devices
// raised. The fast path shrinks ProcVMCalls and Interrupts for the
// same byte volume; legacy mode reproduces the historical counts.
//
// The per-device fields break the totals down: interrupts per device,
// console traffic in both directions, and the frames/bytes the net
// device exchanged with the switch. All of them are read from the
// session's metrics registry — Metrics() exposes the same numbers
// (and more) by name.
type Stats struct {
	ProcVMCalls  int64
	BytesRead    int64
	BytesWritten int64
	Interrupts   int64

	BlkInterrupts  int64
	ConsInterrupts int64
	NetInterrupts  int64

	ConsBytesToGuest   int64 // host -> guest console bytes
	ConsBytesFromGuest int64 // guest -> host console bytes
	NetTxFrames        int64 // guest -> switch
	NetTxBytes         int64
	NetRxFrames        int64 // switch -> guest
	NetRxBytes         int64
}

// Stats returns the session's counters so far.
func (s *Session) Stats() Stats {
	st := Stats{
		ProcVMCalls:        s.pm.calls.Value(),
		BytesRead:          s.pm.bytesRead.Value(),
		BytesWritten:       s.pm.bytesWritten.Value(),
		ConsBytesToGuest:   s.reg.Counter("cons.bytes_to_guest").Value(),
		ConsBytesFromGuest: s.reg.Counter("cons.bytes_from_guest").Value(),
		NetTxFrames:        s.reg.Counter("net.tx_frames").Value(),
		NetTxBytes:         s.reg.Counter("net.tx_bytes").Value(),
		NetRxFrames:        s.reg.Counter("net.rx_frames").Value(),
		NetRxBytes:         s.reg.Counter("net.rx_bytes").Value(),
	}
	if s.blk != nil {
		st.BlkInterrupts = s.blk.Dev.InterruptCount()
	}
	if s.cons != nil {
		st.ConsInterrupts = s.cons.Dev.InterruptCount()
	}
	if s.net != nil {
		st.NetInterrupts = s.net.Dev.InterruptCount()
	}
	st.Interrupts = st.BlkInterrupts + st.ConsInterrupts + st.NetInterrupts
	return st
}

// Metrics snapshots the session's metrics registry: every named
// counter plus .count/.sum_ns/.max_ns per histogram. Keys are stable,
// so two same-seed runs produce identical maps.
func (s *Session) Metrics() map[string]int64 { return s.reg.Snapshot() }

// MetricsText renders the registry in the plain-text dump format.
func (s *Session) MetricsText() string { return s.reg.Text() }

// Registry exposes the session-scoped metrics registry (counters and
// virtual-time histograms such as blk.req_vlat).
func (s *Session) Registry() *obs.Registry { return s.reg }

// NetPort returns the switch port this session's vmsh-net device is
// cabled into, or nil when networking was not requested.
func (s *Session) NetPort() *netsim.Port { return s.netPort }

// teardownTraps removes the MMIO interception.
func (s *Session) teardownTraps() {
	if s.wrapVM != nil {
		s.wrapVM.SetWrapTrap(0, 0, nil)
		s.wrapVM = nil
	}
	if s.tracer != nil {
		s.tracer.SetSyscallTax(false)
	}
	if s.serveSock != nil {
		// Close the ioregionfd serving socket: the kernel drops the
		// MMIO routing for this (now dead) session.
		s.serveSock.SetHandler(nil)
		s.serveSock = nil
	}
}

// Detach asks the library to unwind (§4.4): control word + console
// interrupt, wait for the ack — then drains the attach transaction's
// undo stack, removing every host-side artefact of the attach (the
// library memslot and its mapping, the page-table entries, every
// injected mmap and created fd, traps, ptrace). Detach is idempotent:
// a second call is a no-op, and a Detach after a failed attach finds
// an already-empty undo stack.
func (s *Session) Detach() error {
	if s.detached {
		return nil
	}
	if err := s.writeSync(guestlib.SyncControl, guestlib.ControlDetach); err != nil {
		return err
	}
	// Kick the guest via the console irqfd so it notices the request.
	if _, err := s.v.Proc.Syscall(hostsim.SysWrite, uint64(s.consEvFD), s.sigHVA, 8); err != nil {
		return err
	}
	ack, err := s.readSync(guestlib.SyncAck)
	if err != nil {
		return err
	}
	if ack != 1 {
		return fmt.Errorf("vmsh: guest did not acknowledge detach")
	}
	if tx := s.tx; tx != nil {
		// Cleanup runs with the fault plane paused: compensations must
		// not fault, and must not shift the plan's sequence numbers.
		f := s.v.Host.Faults
		wasPaused := f.Paused()
		f.SetPaused(true)
		if tx.tracer == nil {
			// ioregionfd mode dropped ptrace after setup; the injected
			// cleanup syscalls need it back.
			tr, err := s.v.Proc.Attach(s.target)
			if err != nil {
				f.SetPaused(wasPaused)
				return err
			}
			tx.tracer = tr
		}
		// rollback re-interrupts the (running) target, runs the undo
		// stack LIFO — the guest resumed long ago, so the saved-regs
		// restore is skipped; the trampoline already did it guest-side
		// — and ends by detaching ptrace.
		tx.rollback()
		f.SetPaused(wasPaused)
		s.tracer = nil
	} else {
		s.teardownTraps()
		if s.tracer != nil {
			_ = s.tracer.Detach()
			s.tracer = nil
		}
	}
	s.detached = true
	if s.tapped {
		s.v.Host.SetTap(nil)
		s.tapped = false
	}
	if s.record != nil {
		// Seal the recording with the session's end state: final
		// virtual time (the recorder reads the clock), FNV-64a hash of
		// each guest memslot after the rollback restored pre-attach
		// state, and the session metric snapshot. Replay re-derives
		// and cross-checks exactly these.
		s.record.Finalize(s.RAMHashes(), s.reg.Snapshot())
		if err := writeRecording(s.record, s.recordSink); err != nil {
			return err
		}
	}
	return nil
}

// RAMHashes returns one FNV-64a hash per guest memslot (in GPA order),
// computed kernel-side — no clock charge, no crossings — so recording
// the end state cannot perturb the run being recorded.
func (s *Session) RAMHashes() []uint64 {
	out := make([]uint64, 0, len(s.pm.slots))
	for _, sl := range s.pm.slots {
		h := fnv.New64a()
		if m, ok := s.target.AS.Find(sl.HVA); ok {
			off := uint64(sl.HVA - m.HVA)
			end := off + sl.Size
			if end > uint64(len(m.Phys.Data)) {
				end = uint64(len(m.Phys.Data))
			}
			h.Write(m.Phys.Data[off:end])
		}
		out = append(out, h.Sum64())
	}
	return out
}
