package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vmsh/internal/hostsim"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
	"vmsh/internal/obs"
)

// testProcMem builds a procMem over a synthetic hypervisor process
// with three memslots: two GPA-adjacent but HVA-disjoint (the layout
// real hypervisors produce, since every region is mmapped
// independently) and a third after a one-page hole.
//
//	GPA [0x0000,0x2000)  -> HVA 0x100000
//	GPA [0x2000,0x3000)  -> HVA 0x900000   (not HVA-adjacent!)
//	GPA [0x4000,0x5000)  -> HVA 0x500000   (hole at 0x3000)
func testProcMem(t *testing.T) (*procMem, *hostsim.Process) {
	t.Helper()
	h := hostsim.NewHost()
	hyp := h.NewProcess("hyp", hostsim.Creds{UID: 1000, Caps: map[hostsim.Capability]bool{}})
	self := h.NewProcess("vmsh", hostsim.Creds{UID: 0, Caps: map[hostsim.Capability]bool{
		hostsim.CapSysPtrace: true,
	}})
	var slots []kvm.MemSlotInfo
	for i, r := range []struct {
		gpa  mem.GPA
		hva  mem.HVA
		size uint64
	}{
		{0x0000, 0x100000, 0x2000},
		{0x2000, 0x900000, 0x1000},
		{0x4000, 0x500000, 0x1000},
	} {
		if _, err := hyp.AS.MapPhys(r.hva, mem.NewPhys(0, r.size), fmt.Sprintf("ram%d", i)); err != nil {
			t.Fatal(err)
		}
		slots = append(slots, kvm.MemSlotInfo{Slot: uint32(i), GPA: r.gpa, HVA: r.hva, Size: r.size})
	}
	return newProcMem(h, self, hyp.PID, slots, obs.NewRegistry()), hyp
}

// fillGuest writes a deterministic byte pattern over the mapped GPA
// ranges through the kernel-side (uncharged, uncounted) path.
func fillGuest(t *testing.T, pm *procMem, hyp *hostsim.Process) {
	t.Helper()
	for _, s := range pm.slots {
		buf := make([]byte, s.Size)
		for i := range buf {
			buf[i] = byte((uint64(s.GPA) + uint64(i)) * 7)
		}
		if err := hyp.WriteMem(s.HVA, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestProcMemStraddlingAccess is the regression test for the fast-path
// bugfix: an access crossing from one memslot into a GPA-adjacent one
// used to be rejected ("straddles memslot boundary"); it must now be
// split into per-slot iovecs and succeed.
func TestProcMemStraddlingAccess(t *testing.T) {
	pm, hyp := testProcMem(t)
	fillGuest(t, pm, hyp)

	got := make([]byte, 64)
	if err := pm.ReadPhys(0x2000-32, got); err != nil {
		t.Fatalf("straddling read: %v", err)
	}
	// The fill pattern is GPA-based, continuous across the boundary.
	want := make([]byte, 64)
	for i := range want {
		want[i] = byte(uint64(0x2000-32+i) * 7)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("straddling read corrupted: %x != %x", got[:8], want[:8])
	}

	msg := bytes.Repeat([]byte("straddle"), 8)
	if err := pm.WritePhys(0x2000-32, msg); err != nil {
		t.Fatalf("straddling write: %v", err)
	}
	// The tail must land in the second slot's (distant) HVA range.
	tail := make([]byte, 32)
	if err := hyp.ReadMem(0x900000, tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail, msg[32:]) {
		t.Fatalf("tail not in second slot: %q", tail)
	}

	// hvaFor cannot represent a straddling range and must still refuse.
	if _, err := pm.hvaFor(0x2000-32, 64); err == nil ||
		!strings.Contains(err.Error(), "straddles") {
		t.Fatalf("hvaFor accepted a straddling range: %v", err)
	}
	if _, err := pm.hvaFor(0x1000, 64); err != nil {
		t.Fatalf("hvaFor in-slot: %v", err)
	}
}

// TestProcMemGapRejected: ranges touching unmapped GPA space fail, for
// both scalar and vectored entry points.
func TestProcMemGapRejected(t *testing.T) {
	pm, _ := testProcMem(t)
	buf := make([]byte, 0x100)
	if err := pm.ReadPhys(0x3000, buf); err == nil {
		t.Fatal("read from hole succeeded")
	}
	if err := pm.ReadPhys(0x2f80, buf); err == nil {
		t.Fatal("read running into hole succeeded")
	}
	err := pm.ReadPhysVec([]mem.Vec{
		{GPA: 0x0000, Buf: make([]byte, 16)},
		{GPA: 0x3000, Buf: buf},
	})
	if err == nil {
		t.Fatal("vectored read with a bad segment succeeded")
	}
}

// TestProcMemVectoredEqualsScalar is the property test: for randomized
// vector shapes — including slot-straddling segments — one vectored
// read returns exactly what a loop of scalar reads returns, and one
// vectored write leaves guest memory exactly as a loop of scalar
// writes does. Shapes touching unmapped space must fail both ways.
func TestProcMemVectoredEqualsScalar(t *testing.T) {
	rnd := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 200; iter++ {
		pm, hyp := testProcMem(t)
		fillGuest(t, pm, hyp)

		nvec := 1 + rnd.Intn(5)
		vecsA := make([]mem.Vec, nvec) // for the vectored call
		vecsB := make([]mem.Vec, nvec) // for the scalar loop
		bad := false
		for i := range vecsA {
			var gpa mem.GPA
			n := 1 + rnd.Intn(0x180)
			switch rnd.Intn(4) {
			case 0: // straddle the 0x2000 slot boundary
				gpa = 0x2000 - mem.GPA(1+rnd.Intn(n))
			case 1: // possibly run into the hole at 0x3000
				gpa = 0x3000 - mem.GPA(rnd.Intn(2*n))
				if uint64(gpa)+uint64(n) > 0x3000 {
					bad = true
				}
			default: // anywhere in the first two slots
				gpa = mem.GPA(rnd.Intn(0x3000 - n))
			}
			vecsA[i] = mem.Vec{GPA: gpa, Buf: make([]byte, n)}
			vecsB[i] = mem.Vec{GPA: gpa, Buf: make([]byte, n)}
		}

		errV := pm.ReadPhysVec(vecsA)
		var errS error
		for _, v := range vecsB {
			if err := pm.ReadPhys(v.GPA, v.Buf); err != nil {
				errS = err
				break
			}
		}
		if (errV == nil) != (errS == nil) {
			t.Fatalf("iter %d: vectored err %v, scalar err %v", iter, errV, errS)
		}
		if bad && errV == nil {
			t.Fatalf("iter %d: read over hole succeeded", iter)
		}
		if errV == nil {
			for i := range vecsA {
				if !bytes.Equal(vecsA[i].Buf, vecsB[i].Buf) {
					t.Fatalf("iter %d vec %d: vectored != scalar", iter, i)
				}
			}
		}

		// Writes: apply the same shapes with fresh payloads to two
		// identically-seeded guests and compare final memory.
		if errV != nil {
			continue
		}
		for i := range vecsA {
			rnd.Read(vecsA[i].Buf)
			copy(vecsB[i].Buf, vecsA[i].Buf)
		}
		pm2, hyp2 := testProcMem(t)
		fillGuest(t, pm2, hyp2)
		if err := pm.WritePhysVec(vecsA); err != nil {
			t.Fatalf("iter %d: vectored write: %v", iter, err)
		}
		for _, v := range vecsB {
			if err := pm2.WritePhys(v.GPA, v.Buf); err != nil {
				t.Fatalf("iter %d: scalar write: %v", iter, err)
			}
		}
		for si := range pm.slots {
			a := make([]byte, pm.slots[si].Size)
			b := make([]byte, pm2.slots[si].Size)
			if err := hyp.ReadMem(pm.slots[si].HVA, a); err != nil {
				t.Fatal(err)
			}
			if err := hyp2.ReadMem(pm2.slots[si].HVA, b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("iter %d: slot %d differs after vectored vs scalar writes", iter, si)
			}
		}
	}
}

// TestProcMemVectoredCallCount: a vectored access is one process_vm
// call no matter how many segments it resolves to; the equivalent
// scalar loop pays one per element.
func TestProcMemVectoredCallCount(t *testing.T) {
	pm, hyp := testProcMem(t)
	fillGuest(t, pm, hyp)

	vecs := make([]mem.Vec, 8)
	for i := range vecs {
		// Every vec straddles the boundary: 16 iovec segments total.
		vecs[i] = mem.Vec{GPA: 0x2000 - 8, Buf: make([]byte, 16)}
	}
	before := pm.calls.Value()
	if err := pm.ReadPhysVec(vecs); err != nil {
		t.Fatal(err)
	}
	if got := pm.calls.Value() - before; got != 1 {
		t.Fatalf("vectored read issued %d calls, want 1", got)
	}
	before = pm.calls.Value()
	for _, v := range vecs {
		if err := pm.ReadPhys(v.GPA, v.Buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := pm.calls.Value() - before; got != int64(len(vecs)) {
		t.Fatalf("scalar loop issued %d calls, want %d", got, len(vecs))
	}
	if r := pm.bytesRead.Value(); r != int64(2*8*16) {
		t.Fatalf("bytesRead %d, want %d", r, 2*8*16)
	}
}

// TestProcMemSlotLookup exercises the sorted-slot binary search edges
// and the addSlot sorted insert.
func TestProcMemSlotLookup(t *testing.T) {
	pm, _ := testProcMem(t)
	cases := []struct {
		gpa  mem.GPA
		want int
	}{
		{0x0000, 0}, {0x1fff, 0}, {0x2000, 1}, {0x2fff, 1},
		{0x3000, -1}, {0x3fff, -1}, {0x4000, 2}, {0x4fff, 2}, {0x5000, -1},
	}
	for _, c := range cases {
		if got := pm.slotFor(c.gpa); got != c.want {
			t.Fatalf("slotFor(%#x) = %d, want %d", c.gpa, got, c.want)
		}
	}
	// Repeat in reverse to exercise the last-hit cache being wrong.
	for i := len(cases) - 1; i >= 0; i-- {
		if got := pm.slotFor(cases[i].gpa); got != cases[i].want {
			t.Fatalf("reverse slotFor(%#x) = %d, want %d", cases[i].gpa, got, cases[i].want)
		}
	}
	// Inserting into the hole keeps the table sorted and resolvable.
	pm.addSlot(kvm.MemSlotInfo{Slot: 9, GPA: 0x3000, HVA: 0x700000, Size: 0x1000})
	for i := 1; i < len(pm.slots); i++ {
		if pm.slots[i-1].GPA >= pm.slots[i].GPA {
			t.Fatal("slots not sorted after addSlot")
		}
	}
	if got := pm.slotFor(0x3800); got < 0 || pm.slots[got].Slot != 9 {
		t.Fatalf("new slot not found: idx %d", got)
	}
}
