package core

import (
	"strings"
	"testing"

	"vmsh/internal/guestlib"
	"vmsh/internal/guestos"
	"vmsh/internal/hypervisor"
)

func TestDetectVersion(t *testing.T) {
	img := make([]byte, 4096)
	copy(img[100:], "Linux version 4.19.0 (gcc) #1 SMP")
	v, err := detectVersion(img)
	if err != nil || v.String() != "4.19" {
		t.Fatalf("%v %v", v, err)
	}
	if _, err := detectVersion(make([]byte, 4096)); err == nil {
		t.Fatal("version detected in zeros")
	}
	copy(img[100:], "Linux version garbage")
	if _, err := detectVersion(img); err == nil {
		t.Fatal("garbage banner parsed")
	}
}

func TestBlobBuildsForEveryVersion(t *testing.T) {
	for _, ver := range guestos.LTSVersions {
		v, _ := guestos.ParseVersion(ver)
		blob, err := buildBlob(blobParams{
			version: v, blkBase: vmshBlkBase, blkGSI: vmshBlkGSI,
			consBase: vmshConsBase, consGSI: vmshConsGSI,
		})
		if err != nil {
			t.Fatalf("%s: %v", ver, err)
		}
		hdr, err := guestlib.ParseHeader(blob)
		if err != nil {
			t.Fatalf("%s: %v", ver, err)
		}
		// The twelve kernel functions are all referenced.
		if hdr.RelocCnt != 12 {
			t.Fatalf("%s: %d relocations, want 12", ver, hdr.RelocCnt)
		}
		seen := map[string]bool{}
		for i := 0; i < int(hdr.RelocCnt); i++ {
			name, err := hdr.RelocName(blob, i)
			if err != nil {
				t.Fatal(err)
			}
			seen[name] = true
		}
		for _, want := range []string{
			"printk", "platform_device_register", "platform_device_unregister",
			"filp_open", "filp_close", "kernel_read", "kernel_write",
			"kthread_create_on_node", "wake_up_process", "kthread_stop",
			"do_exit", "call_usermodehelper",
		} {
			if !seen[want] {
				t.Fatalf("%s: blob misses %s", ver, want)
			}
		}
	}
}

func TestMinimalBlobSmaller(t *testing.T) {
	v, _ := guestos.ParseVersion("5.10")
	full, err := buildBlob(blobParams{version: v, blkBase: vmshBlkBase, consBase: vmshConsBase})
	if err != nil {
		t.Fatal(err)
	}
	min, err := buildBlob(blobParams{version: v, blkBase: vmshBlkBase, consBase: vmshConsBase, minimal: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(min) >= len(full) {
		t.Fatalf("minimal blob (%d) not smaller than full (%d)", len(min), len(full))
	}
}

func TestSecondAttachRejectedWhileTraced(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	// wrap_syscall keeps the tracer; a second VMSH cannot attach.
	_ = attach(t, h, inst, Options{Trap: TrapWrapSyscall})
	v2 := New(h)
	img := buildToolImage(t, h, "second.img")
	if _, err := v2.Attach(inst.Proc.PID, Options{Image: img}); err == nil {
		t.Fatal("second concurrent attach succeeded")
	}
}

func TestReattachAfterDetach(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{Trap: TrapWrapSyscall})
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	// A fresh attach works again after a clean detach.
	sess2 := attach(t, h, inst, Options{})
	out, err := sess2.Exec("echo again")
	if err != nil || !strings.Contains(out, "again") {
		t.Fatalf("%q %v", out, err)
	}
}

func TestAttachChargesRealisticSetupTime(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	before := h.Clock.Now()
	_ = attach(t, h, inst, Options{})
	elapsed := h.Clock.Since(before)
	// Attach is introspection-heavy (page-table walk over the KASLR
	// window via process_vm_readv): it must cost real milliseconds,
	// but stay interactive (well under a minute).
	if elapsed.Milliseconds() < 1 {
		t.Fatalf("attach cost only %v — the introspection path is not being charged", elapsed)
	}
	if elapsed.Seconds() > 60 {
		t.Fatalf("attach cost %v — implausibly slow", elapsed)
	}
}
