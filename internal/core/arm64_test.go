package core

import (
	"strings"
	"testing"

	"vmsh/internal/arch"
	"vmsh/internal/fsimage"
	"vmsh/internal/guestos"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
	"vmsh/internal/mem"
)

func launchARM64(t *testing.T, kernel string) (*hostsim.Host, *hypervisor.Instance) {
	t.Helper()
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:          hypervisor.QEMU,
		Arch:          arch.ARM64,
		KernelVersion: kernel,
		RootFS:        fsimage.GuestRoot("arm-guest"),
		Seed:          4242,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, inst
}

// TestARM64AttachEndToEnd exercises the full arm64 port: X8/X0-X5
// syscall injection, TTBR0-rooted VMSAv8 page-table walking in the
// arm64 KASLR window, user_pt_regs hijacking via PC, and the overlay
// console on top.
func TestARM64AttachEndToEnd(t *testing.T) {
	h, inst := launchARM64(t, "5.10")
	if inst.Kernel.Arch != arch.ARM64 {
		t.Fatal("guest not arm64")
	}
	// The kernel landed in the arm64 window.
	if inst.Kernel.KernelBase < guestos.ARM64KASLRBase ||
		inst.Kernel.KernelBase >= guestos.ARM64KASLREnd {
		t.Fatalf("kernel at %#x, outside the arm64 KASLR window", inst.Kernel.KernelBase)
	}
	// The vCPU runs with TTBR0, not CR3.
	vcpu := inst.VM.VCPUs()[0]
	if vcpu.GetSregs().TTBR0 == 0 || vcpu.GetSregs().CR3 != 0 {
		t.Fatalf("sregs: %+v", vcpu.GetSregs())
	}

	sess := attach(t, h, inst, Options{})
	if sess.KernelBase() != inst.Kernel.KernelBase {
		t.Fatalf("sideloader found %#x, kernel at %#x", sess.KernelBase(), inst.Kernel.KernelBase)
	}
	out, err := sess.Exec("uname")
	if err != nil || !strings.Contains(out, "Linux") {
		t.Fatalf("%q %v", out, err)
	}
	out, _ = sess.Exec("cat /var/lib/vmsh/etc/hostname")
	if !strings.Contains(out, "arm-guest") {
		t.Fatalf("guest root: %q", out)
	}
	// After the trampoline returned, the vCPU is back at the idle PC.
	if mem.GVA(vcpu.GetRegs().PC) != inst.Kernel.KernelBase+0x1000 {
		t.Fatalf("PC after attach = %#x", vcpu.GetRegs().PC)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
}

// TestARM64AllKernels runs the kernel matrix on arm64 too.
func TestARM64AllKernels(t *testing.T) {
	for _, ver := range guestos.LTSVersions {
		t.Run(ver, func(t *testing.T) {
			h, inst := launchARM64(t, ver)
			sess := attach(t, h, inst, Options{})
			out, err := sess.Exec("uname -r")
			if err != nil || !strings.Contains(out, ver) {
				t.Fatalf("%q %v (log %v)", out, err, inst.Kernel.Log)
			}
		})
	}
}

// TestARM64SyscallInjectionABI pins the register convention.
func TestARM64SyscallInjectionABI(t *testing.T) {
	h := hostsim.NewHost()
	target := h.NewProcess("hyp", hostsim.Creds{UID: 1000, Caps: map[hostsim.Capability]bool{}})
	target.Arch = arch.ARM64
	tid := target.MainThread()
	tid.Regs.X[8], tid.Regs.X[0], tid.Regs.PC = 1, 2, 3

	vmsh := h.NewProcess("vmsh", hostsim.Creds{UID: 0,
		Caps: map[hostsim.Capability]bool{hostsim.CapSysPtrace: true}})
	tr, _ := vmsh.Attach(target)
	_ = tr.InterruptAll()
	pid, err := tr.InjectSyscall(tid, hostsim.SysGetpid)
	if err != nil || int(pid) != target.PID {
		t.Fatalf("%d %v", pid, err)
	}
	// Registers restored exactly.
	if tid.Regs.X[8] != 1 || tid.Regs.X[0] != 2 || tid.Regs.PC != 3 {
		t.Fatalf("regs clobbered: %+v", tid.Regs.X[:9])
	}
}
