package core

import (
	"errors"
	"testing"

	"vmsh/internal/faults"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
)

// hvState snapshots the hypervisor-side counts the rollback must
// restore: open fds, address-space mappings, KVM memslots and the
// vCPU register files.
type hvState struct {
	fds, maps, slots int
	regs             []hostsim.Regs
}

func snapshotHV(inst *hypervisor.Instance) hvState {
	st := hvState{
		fds:   len(inst.Proc.FDs()),
		maps:  len(inst.Proc.AS.Mappings()),
		slots: len(inst.VM.MemSlots()),
	}
	for _, v := range inst.VM.VCPUs() {
		st.regs = append(st.regs, v.GetRegs())
	}
	return st
}

func (a hvState) diff(t *testing.T, b hvState, what string) {
	t.Helper()
	if a.fds != b.fds {
		t.Errorf("%s: fds %d -> %d", what, a.fds, b.fds)
	}
	if a.maps != b.maps {
		t.Errorf("%s: mappings %d -> %d", what, a.maps, b.maps)
	}
	if a.slots != b.slots {
		t.Errorf("%s: memslots %d -> %d", what, a.slots, b.slots)
	}
	for i := range a.regs {
		if a.regs[i] != b.regs[i] {
			t.Errorf("%s: vCPU %d registers changed", what, i)
		}
	}
}

// attachStages must match the stage names Attach runs through; the
// rollback sweep below forces a failure inside each one.
var attachStages = []string{
	"fd_discovery", "ptrace_interrupt", "memslot_probe", "kernel_scan",
	"build_blob", "inject_library", "setup_devices", "rip_flip",
}

// TestRollbackPerStage forces the first host crossing of every attach
// stage to fail and checks that each failure (a) surfaces as a typed
// *AttachError naming that stage, (b) restores the hypervisor's fd
// table, mappings, memslots and vCPU registers, and (c) leaves the VM
// attachable.
func TestRollbackPerStage(t *testing.T) {
	for _, stage := range attachStages {
		t.Run(stage, func(t *testing.T) {
			h, inst := launch(t, hypervisor.QEMU, "5.10")
			img := buildToolImage(t, h, "rb.img")
			pre := snapshotHV(inst)

			plan := faults.NewPlan(1, faults.Rule{Stage: stage, Nth: 1})
			sess, err := New(h).Attach(inst.Proc.PID, Options{Image: img, Fault: plan})
			if err == nil {
				// A stage with no host crossings (pure computation, e.g.
				// build_blob) cannot fault; the armed rule must then have
				// injected nothing at all.
				if n := h.Faults.Injected(); n != 0 {
					t.Fatalf("attach survived %d injected fault(s) in stage %s", n, stage)
				}
				if err := sess.Detach(); err != nil {
					t.Fatal(err)
				}
				return
			}
			var ae *AttachError
			if !errors.As(err, &ae) {
				t.Fatalf("error is %T, want *AttachError: %v", err, err)
			}
			if ae.Stage != stage {
				t.Fatalf("error names stage %q, want %q (err: %v)", ae.Stage, stage, err)
			}
			if ae.PID != inst.Proc.PID {
				t.Fatalf("error names pid %d, want %d", ae.PID, inst.Proc.PID)
			}
			if !faults.IsFault(err) {
				t.Fatalf("injected fault not visible through the chain: %v", err)
			}
			if inst.Kernel.Panicked != nil {
				t.Fatalf("guest panicked: %v", inst.Kernel.Panicked)
			}
			if inst.Proc.Traced() {
				t.Fatal("ptrace left attached after rollback")
			}
			// rip_flip faults after the guest may have run (the library
			// can execute before the failing crossing), so registers are
			// compared only for the pre-resume stages; counts always.
			post := snapshotHV(inst)
			if stage == "rip_flip" {
				post.regs, pre.regs = nil, nil
			}
			pre.diff(t, post, stage)

			// The VM must still be attachable after the rollback.
			h.SetFaultPlan(nil)
			img2 := buildToolImage(t, h, "rb2.img")
			sess, err = New(h).Attach(inst.Proc.PID, Options{Image: img2})
			if err != nil {
				t.Fatalf("re-attach after %s rollback: %v (guest log: %v)", stage, err, inst.Kernel.Log)
			}
			if _, err := sess.Exec("echo recovered"); err != nil {
				t.Fatalf("re-attached session broken: %v", err)
			}
			if err := sess.Detach(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTypedErrors pins the error taxonomy: sentinels are matchable
// with errors.Is through the *AttachError wrapper.
func TestTypedErrors(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")

	// Unknown pid.
	_, err := New(h).Attach(424242, Options{})
	if !errors.Is(err, ErrNoProcess) {
		t.Fatalf("want ErrNoProcess, got %v", err)
	}
	var ae *AttachError
	if !errors.As(err, &ae) || ae.PID != 424242 {
		t.Fatalf("AttachError context missing: %v", err)
	}

	// Not a hypervisor: a process with no /dev/kvm fds.
	plain := h.NewProcess("not-a-vmm", hostsim.Creds{UID: 0})
	_, err = New(h).Attach(plain.PID, Options{})
	if !errors.Is(err, ErrNotHypervisor) {
		t.Fatalf("want ErrNotHypervisor, got %v", err)
	}
	if !errors.As(err, &ae) || ae.Stage != "fd_discovery" {
		t.Fatalf("want fd_discovery stage context, got %v", err)
	}

	// Missing image.
	_, err = New(h).Attach(inst.Proc.PID, Options{})
	if !errors.Is(err, ErrNoImage) {
		t.Fatalf("want ErrNoImage, got %v", err)
	}

	// A clean attach still works on the same VM afterwards.
	sess := attach(t, h, inst, Options{})
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
}

// TestTransientRetry arms a transient first-crossing fault on the
// process_vm read path with the default retry policy: the attach must
// recover (retrying charges virtual time) instead of failing.
func TestTransientRetry(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	img := buildToolImage(t, h, "tr.img")
	plan := faults.NewPlan(1, faults.Rule{Op: "procvm:readv", Nth: 1, Transient: true})

	before := h.Clock.Now()
	sess, err := New(h).Attach(inst.Proc.PID, Options{Image: img, Fault: plan, Retry: DefaultRetry})
	if err != nil {
		t.Fatalf("transient fault not retried: %v", err)
	}
	if h.Faults.Injected() != 1 {
		t.Fatalf("expected exactly one injected fault, got %d", h.Faults.Injected())
	}
	if h.Clock.Now() <= before {
		t.Fatal("retry charged no virtual time")
	}
	if _, err := sess.Exec("echo retried"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}

	// Without a retry policy the same plan must fail the attach.
	h2, inst2 := launch(t, hypervisor.QEMU, "5.10")
	img2 := buildToolImage(t, h2, "tr2.img")
	plan2 := faults.NewPlan(1, faults.Rule{Op: "procvm:readv", Nth: 1, Transient: true})
	if _, err := New(h2).Attach(inst2.Proc.PID, Options{Image: img2, Fault: plan2}); err == nil {
		t.Fatal("transient fault with no retry policy must fail the attach")
	} else if !faults.IsTransient(err) {
		t.Fatalf("transience lost through the error chain: %v", err)
	}
}

// TestDetachLeavesNoResidue pins satellite bug #2: a full
// attach/detach cycle restores the hypervisor's fd table, mappings and
// memslots exactly; Detach is idempotent; the VM re-attaches.
func TestDetachLeavesNoResidue(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	pre := snapshotHV(inst)
	pre.regs = nil // the guest runs during the session

	sess := attach(t, h, inst, Options{})
	if _, err := sess.Exec("echo live"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	post := snapshotHV(inst)
	post.regs = nil
	pre.diff(t, post, "after detach")
	if inst.Proc.Traced() {
		t.Fatal("ptrace left attached after detach")
	}

	// Idempotent: a second Detach is a no-op.
	if err := sess.Detach(); err != nil {
		t.Fatalf("second Detach: %v", err)
	}

	// And the VM is attachable again.
	sess2 := attach(t, h, inst, Options{Image: buildToolImage(t, h, "again.img")})
	if _, err := sess2.Exec("echo again"); err != nil {
		t.Fatal(err)
	}
	if err := sess2.Detach(); err != nil {
		t.Fatal(err)
	}
}
