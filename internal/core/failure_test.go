package core

import (
	"strings"
	"testing"

	"vmsh/internal/fsimage"
	"vmsh/internal/guestos"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
	"vmsh/internal/mem"
)

// TestAttachFailsOnStrippedKsymtab: if the guest kernel's exported
// symbol strings are unrecognisable (a stripped or exotic build), the
// scan fails cleanly instead of side-loading garbage.
func TestAttachFailsOnStrippedKsymtab(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	// Corrupt the anchor strings in guest memory before attaching,
	// as a build without the expected exports would look.
	base, _ := inst.Kernel.SymbolAddr("printk")
	_ = base
	img := make([]byte, 4<<20)
	if err := inst.VM.GuestMem().ReadPhys(mem.GPA(16<<20), img); err != nil {
		t.Fatal(err)
	}
	for _, anchor := range []string{"filp_open", "kernel_read", "wake_up_process"} {
		for {
			idx := strings.Index(string(img), anchor)
			if idx < 0 {
				break
			}
			copy(img[idx:], strings.Repeat("#", len(anchor)))
		}
	}
	if err := inst.VM.GuestMem().WritePhys(mem.GPA(16<<20), img); err != nil {
		t.Fatal(err)
	}

	v := New(h)
	tools := buildToolImage(t, h, "t.img")
	_, err := v.Attach(inst.Proc.PID, Options{Image: tools})
	if err == nil {
		t.Fatal("attach succeeded against a stripped kernel")
	}
	if !strings.Contains(err.Error(), "ksymtab") && !strings.Contains(err.Error(), "anchor") {
		t.Fatalf("unexpected failure: %v", err)
	}
	// The hypervisor was left untraced and the guest unpanicked.
	if inst.Proc.Traced() {
		t.Fatal("tracer leaked after failed attach")
	}
	if inst.Kernel.Panicked != nil {
		t.Fatalf("failed attach panicked the guest: %v", inst.Kernel.Panicked)
	}
}

// TestAttachFailsOnGarbageImage: an attached image that is not a
// filesystem makes the overlay mount fail inside the guest; the error
// surfaces through the sync page and the guest log, and attach
// returns an error.
func TestAttachFailsOnGarbageImage(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	junk := h.CreateFile("junk.img", 16<<20, false) // never mkfs'd
	v := New(h)
	_, err := v.Attach(inst.Proc.PID, Options{Image: junk})
	if err == nil {
		t.Fatal("attach succeeded with a garbage image")
	}
	log := strings.Join(inst.Kernel.Log, "\n")
	if !strings.Contains(log, "vmsh-lib: aborted") {
		t.Fatalf("guest log does not show the library abort:\n%s", log)
	}
	if inst.Kernel.Panicked != nil {
		t.Fatal("a bad image must not panic the guest")
	}
}

// TestMultiVCPUAttach: the sideloader discovers all vCPU fds and the
// attach works on an SMP guest (it hijacks vCPU 0).
func TestMultiVCPUAttach(t *testing.T) {
	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:   hypervisor.QEMU,
		VCPUs:  4,
		RootFS: fsimage.GuestRoot("smp"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.VCPUFDs); got != 4 {
		t.Fatalf("%d vcpu fds", got)
	}
	sess := attach(t, h, inst, Options{})
	if _, err := sess.Exec("echo smp"); err != nil {
		t.Fatal(err)
	}
}

// TestTwoVMsTwoSessions: one VMSH process drives sessions into two
// different VMs on the same host simultaneously.
func TestTwoVMsTwoSessions(t *testing.T) {
	h := hostsim.NewHost()
	launchOne := func(name string) *hypervisor.Instance {
		inst, err := hypervisor.Launch(h, hypervisor.Config{
			Kind: hypervisor.QEMU, Name: name,
			RootFS: fsimage.GuestRoot(name),
		})
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	a, b := launchOne("vm-a"), launchOne("vm-b")
	// Each attach runs as its own vmsh process (the real CLI forks
	// per invocation): the post-probe privilege drop makes a vmsh
	// process single-attach by design.
	imgA := buildToolImage(t, h, "a.img")
	imgB := buildToolImage(t, h, "b.img")
	sa, err := New(h).Attach(a.Proc.PID, Options{Image: imgA})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := New(h).Attach(b.Proc.PID, Options{Image: imgB})
	if err != nil {
		t.Fatal(err)
	}
	outA, _ := sa.Exec("cat /var/lib/vmsh/etc/hostname")
	outB, _ := sb.Exec("cat /var/lib/vmsh/etc/hostname")
	if !strings.Contains(outA, "vm-a") || !strings.Contains(outB, "vm-b") {
		t.Fatalf("sessions crossed: %q / %q", outA, outB)
	}
	if err := sa.Detach(); err != nil {
		t.Fatal(err)
	}
	// The second session is unaffected by the first's detach.
	if _, err := sb.Exec("echo still-here"); err != nil {
		t.Fatal(err)
	}
}

// TestRawConsoleBytes drives the console with partial lines like a
// human typing.
func TestRawConsoleBytes(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{})
	mark := len(sess.Output())
	sess.SendConsole([]byte("ec"))
	sess.SendConsole([]byte("ho typed-in-"))
	sess.SendConsole([]byte("pieces\n"))
	out := sess.Output()[mark:]
	if !strings.Contains(out, "typed-in-pieces") || !strings.HasSuffix(out, guestos.Prompt) {
		t.Fatalf("console output: %q", out)
	}
	_ = inst
}
