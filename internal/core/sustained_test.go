package core

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"vmsh/internal/fsimage"
	"vmsh/internal/hostsim"
	"vmsh/internal/hypervisor"
)

// TestSustainedLoadDataIntegrity is §6.1's "sustained load test":
// checksum a large OS image through the device. Here it doubles as an
// end-to-end data-integrity check — the hash the guest shell computes
// over the virtio path must equal the hash of the bytes that went into
// the image, so a single corrupted byte anywhere in virtqueue
// encoding, process_vm copies, the filesystem, the page cache or the
// backends would fail it.
func TestSustainedLoadDataIntegrity(t *testing.T) {
	// A large deterministic payload in the guest root.
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i*2654435761 + i>>13)
	}
	want := fmt.Sprintf("%x", sha256.Sum256(payload))

	root := fsimage.GuestRoot("sustained")
	root["/opt/os-image.bin"] = fsimage.Entry{Mode: 0o644, Data: payload}

	h := hostsim.NewHost()
	inst, err := hypervisor.Launch(h, hypervisor.Config{
		Kind:   hypervisor.QEMU,
		RootFS: root,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := attach(t, h, inst, Options{})
	out, err := sess.Exec("sha256sum /var/lib/vmsh/opt/os-image.bin")
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(out)
	if len(fields) != 2 {
		t.Fatalf("sha output: %q", out)
	}
	if fields[0] != want {
		t.Fatalf("hash through the stack = %s, want %s", fields[0], want)
	}
}
