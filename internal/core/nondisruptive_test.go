package core

import (
	"fmt"
	"strings"
	"testing"

	"vmsh/internal/hypervisor"
)

// TestNonDisruptiveAttachDetachCycles is the headline claim exercised
// as a stress test: a guest application keeps writing and verifying
// its own data while VMSH attaches, runs commands and detaches over
// and over. The application must never observe corruption, its files
// must survive every cycle, and the guest must never panic.
func TestNonDisruptiveAttachDetachCycles(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	app := inst.NewGuestProc("app")
	if err := app.Mkdir("/workload", 0o755); err != nil {
		t.Fatal(err)
	}

	// The guest application's step: write a generation file, sync,
	// verify the previous generation is intact.
	gen := 0
	step := func() {
		t.Helper()
		data := []byte(fmt.Sprintf("generation-%04d payload %s", gen, strings.Repeat("x", 2048)))
		path := fmt.Sprintf("/workload/gen-%d", gen%4)
		if err := app.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("gen %d write: %v", gen, err)
		}
		if err := app.Sync(); err != nil {
			t.Fatalf("gen %d sync: %v", gen, err)
		}
		if gen > 0 {
			prev := fmt.Sprintf("/workload/gen-%d", (gen-1)%4)
			got, err := app.ReadFile(prev)
			if err != nil {
				t.Fatalf("gen %d readback: %v", gen, err)
			}
			want := fmt.Sprintf("generation-%04d", gen-1)
			if !strings.HasPrefix(string(got), want) {
				t.Fatalf("gen %d: previous generation corrupted: %q", gen, got[:40])
			}
		}
		gen++
	}

	for cycle := 0; cycle < 5; cycle++ {
		trap := TrapIoregionfd
		if cycle%2 == 1 {
			trap = TrapWrapSyscall
		}
		step()
		img := buildToolImage(t, h, fmt.Sprintf("cycle-%d.img", cycle))
		sess := attach(t, h, inst, Options{Trap: trap, Image: img})
		step()
		out, err := sess.Exec("cat /var/lib/vmsh/workload/gen-0")
		if err != nil || !strings.Contains(out, "generation-") {
			t.Fatalf("cycle %d: overlay view broken: %q %v", cycle, out, err)
		}
		step()
		if err := sess.Detach(); err != nil {
			t.Fatalf("cycle %d detach: %v", cycle, err)
		}
		step()
		if inst.Kernel.Panicked != nil {
			t.Fatalf("cycle %d: guest panicked: %v", cycle, inst.Kernel.Panicked)
		}
	}

	// Final integrity sweep across all generation files.
	for i := 0; i < 4; i++ {
		got, err := app.ReadFile(fmt.Sprintf("/workload/gen-%d", i))
		if err != nil {
			t.Fatalf("final readback gen-%d: %v", i, err)
		}
		if !strings.HasPrefix(string(got), "generation-") || len(got) < 2048 {
			t.Fatalf("gen-%d corrupted after 5 attach cycles", i)
		}
	}
	// And the guest kernel log shows clean attach/detach bracketing.
	log := strings.Join(inst.Kernel.Log, "\n")
	if strings.Count(log, "side-loaded library initialising") != 5 {
		t.Fatalf("expected 5 attaches in the log:\n%s", log)
	}
	if strings.Count(log, "detached; devices unregistered") != 5 {
		t.Fatalf("expected 5 detaches in the log:\n%s", log)
	}
}
