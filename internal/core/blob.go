package core

import (
	"fmt"

	"vmsh/internal/guestlib"
	"vmsh/internal/guestos"
	"vmsh/internal/mem"
	"vmsh/internal/overlay"
)

// blobParams parameterise the side-loaded library program.
type blobParams struct {
	version  guestos.Version
	blkBase  mem.GPA
	blkGSI   uint32
	consBase mem.GPA
	consGSI  uint32
	// net adds a third device descriptor for vmsh-net.
	net     bool
	netBase mem.GPA
	netGSI  uint32
	overlay overlay.Options
	// noOverlay skips device registration of the block device and the
	// spawn step (used by tests that only validate side-loading).
	minimal bool
}

// exePath is where the library drops the guest userspace program —
// /dev is guaranteed writable (§5: "copied into the guest VM by the
// kernel library into a writable path, i.e., /dev").
const exePath = "/dev/vmsh-exe"

// buildBlob assembles the library program for the detected kernel
// version, choosing the kernel_read/kernel_write signature variant and
// the descriptor struct layout the target kernel expects (§6.2).
func buildBlob(p blobParams) ([]byte, error) {
	b := guestlib.NewBuilder()

	// Relocations: the twelve kernel functions.
	rPrintk := b.Reloc("printk")
	rPdevReg := b.Reloc("platform_device_register")
	_ = b.Reloc("platform_device_unregister") // used on the detach path
	rFilpOpen := b.Reloc("filp_open")
	rFilpClose := b.Reloc("filp_close")
	rKRead := b.Reloc("kernel_read")
	rKWrite := b.Reloc("kernel_write")
	rKthread := b.Reloc("kthread_create_on_node")
	rWake := b.Reloc("wake_up_process")
	_ = b.Reloc("kthread_stop")
	rExit := b.Reloc("do_exit")
	rUMH := b.Reloc("call_usermodehelper")

	v2 := p.version.DescStructV2()
	banner := b.DataString("vmsh: side-loaded library initialising")
	blkDesc := b.Data(guestos.EncodeDeviceDesc(v2, p.blkBase, p.blkGSI))
	consDesc := b.Data(guestos.EncodeDeviceDesc(v2, p.consBase, p.consGSI))
	threadName := b.DataString("vmsh-spawner")
	exePathOff := b.DataString(exePath)

	// The guest userspace program payload written into /dev.
	exePayload := append([]byte(guestlib.ExeMagic), []byte(overlay.ProgramName)...)
	exePayload = append(exePayload, 0)
	exePayload = append(exePayload, []byte(p.overlay.Encode())...)
	payloadOff := b.Data(exePayload)
	payloadLen := uint64(len(exePayload))
	posOff := b.Data(make([]byte, 8)) // position word for new-style file IO

	// Main program: announce, bring up devices, hand off to the
	// spawner kthread, report readiness, return through trampoline.
	b.Call(0, rPrintk, guestlib.BlobPtr(banner))
	b.Call(1, rPdevReg, guestlib.BlobPtr(blkDesc))  // virtio-blk
	b.Call(2, rPdevReg, guestlib.BlobPtr(consDesc)) // virtio-console
	if p.net {
		netDesc := b.Data(guestos.EncodeDeviceDesc(v2, p.netBase, p.netGSI))
		b.Call(11, rPdevReg, guestlib.BlobPtr(netDesc)) // virtio-net
	}
	b.Sync(guestlib.StatusDevices)
	if p.minimal {
		b.Sync(guestlib.StatusReady)
		b.End()
	} else {
		b.Call(3, rKthread, guestlib.Imm(0), guestlib.BlobPtr(threadName), guestlib.Imm(0))
		// Entry offset is only known once the spawner body is placed;
		// emit the wake+ready tail first, then the body, and patch the
		// kthread entry via a second pass below.
		b.Call(4, rWake, guestlib.Reg(3))
		b.Sync(guestlib.StatusReady)
		b.End()

		// Spawner kthread body: copy the exe into /dev, exec it, exit.
		entry := b.ProgMark()
		const oCreatWronlyTrunc = 0x40 | 0x1 | 0x200
		b.Call(5, rFilpOpen, guestlib.BlobPtr(exePathOff), guestlib.Imm(oCreatWronlyTrunc), guestlib.Imm(0o755))
		if p.version.NewFileIOSig() {
			b.Call(6, rKWrite, guestlib.Reg(5), guestlib.BlobPtr(payloadOff),
				guestlib.Imm(payloadLen), guestlib.BlobPtr(posOff))
		} else {
			b.Call(6, rKWrite, guestlib.Reg(5), guestlib.Imm(0),
				guestlib.BlobPtr(payloadOff), guestlib.Imm(payloadLen))
		}
		// Read-back check of the first bytes (exercises kernel_read).
		scratch := b.Data(make([]byte, 16))
		if p.version.NewFileIOSig() {
			pos2 := b.Data(make([]byte, 8))
			b.Call(7, rKRead, guestlib.Reg(5), guestlib.BlobPtr(scratch),
				guestlib.Imm(16), guestlib.BlobPtr(pos2))
		} else {
			b.Call(7, rKRead, guestlib.Reg(5), guestlib.Imm(0),
				guestlib.BlobPtr(scratch), guestlib.Imm(16))
		}
		b.Call(8, rFilpClose, guestlib.Reg(5))
		b.Call(9, rUMH, guestlib.BlobPtr(exePathOff), guestlib.Imm(0))
		b.Call(10, rExit, guestlib.Imm(0))
		b.End()

		// Patch the kthread entry argument now that the body offset is
		// known: the Imm(0) placeholder is the first argument of the
		// rKthread call emitted above.
		if !b.PatchCallArg(rKthread, 0, entry) {
			return nil, fmt.Errorf("vmsh: failed to patch spawner entry")
		}
	}
	return b.Build()
}
