// Package core is VMSH itself: the hypervisor-agnostic sideloader and
// the external VirtIO device host.
//
// Attach reaches the guest exclusively through the simulated host
// interfaces — /proc fd enumeration, ptrace, injected system calls,
// process_vm_readv/writev, an eBPF kprobe on kvm_vm_ioctl — mirroring
// §4 and §5 of the paper step by step:
//
//  1. discover the KVM fds in /proc/<pid>/fd;
//  2. ptrace-interrupt every hypervisor thread;
//  3. recover the memslot layout (GPA -> HVA) with the eBPF probe,
//     then drop CAP_BPF;
//  4. read CR3 via an injected KVM_GET_SREGS and walk the guest page
//     tables through process_vm_readv to find the kernel in the KASLR
//     window;
//  5. scan the image for .ksymtab_strings/.ksymtab (all layout
//     variants in parallel) and recover the exported symbols;
//  6. allocate fresh guest physical memory at the top of the address
//     space with an injected mmap + KVM_SET_USER_MEMORY_REGION, write
//     the relocated library blob into it and map it into guest
//     virtual memory right after the kernel image;
//  7. create eventfds/sockets in the hypervisor by injection, pass
//     them back over a unix socket, register irqfds (and, in
//     ioregionfd mode, the MMIO region) for the external devices;
//  8. hijack the vCPU's RIP into the library and resume.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"vmsh/internal/faults"
	"vmsh/internal/guestlib"
	"vmsh/internal/guestos"
	"vmsh/internal/hostsim"
	"vmsh/internal/ksym"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
	"vmsh/internal/netsim"
	"vmsh/internal/obs"
	"vmsh/internal/overlay"
	"vmsh/internal/pagetable"
	"vmsh/internal/replay"
	"vmsh/internal/virtio"
)

// TrapMode selects how MMIO accesses to VMSH's devices are
// intercepted (§5).
type TrapMode int

const (
	// TrapIoregionfd routes the MMIO range through a kernel-filtered
	// socket: zero overhead for unrelated exits. Requires a host
	// kernel carrying the ioregionfd patch.
	TrapIoregionfd TrapMode = iota
	// TrapWrapSyscall hooks every KVM_RUN (and other hypervisor
	// syscalls) with ptrace: works everywhere, taxes everything.
	TrapWrapSyscall
	// TrapAuto tries ioregionfd and falls back to wrap_syscall when
	// the host kernel does not know the ioctl.
	TrapAuto
)

// String implements fmt.Stringer.
func (t TrapMode) String() string {
	switch t {
	case TrapWrapSyscall:
		return "wrap_syscall"
	case TrapAuto:
		return "auto"
	default:
		return "ioregionfd"
	}
}

// VMSH device placement in guest physical space.
const (
	vmshBlkBase  = mem.GPA(0xd8000000)
	vmshConsBase = mem.GPA(0xd8001000)
	vmshNetBase  = mem.GPA(0xd8002000)
	vmshBlkGSI   = uint32(48)
	vmshConsGSI  = uint32(49)
	vmshNetGSI   = uint32(50)
	vmshSlotNum  = uint32(500)
	vmshSlotSize = uint64(4 << 20)
)

// vmshMMIOWindow is the size of the contiguous trap window covering
// all VMSH device register blocks (blk, console, net).
const vmshMMIOWindow = uint64(vmshNetBase-vmshBlkBase) + virtio.MMIOSize

// Options configures an attach.
type Options struct {
	// Image is the host file holding the filesystem image to serve
	// through vmsh-blk.
	Image *hostsim.HostFile
	// Trap selects the MMIO interception mechanism.
	Trap TrapMode
	// ContainerPID adopts a guest container's context (§4.4).
	ContainerPID int
	// SpawnShell starts a shell on the console (default true via
	// Attach; set NoShell to suppress).
	NoShell bool
	// Minimal only side-loads and registers devices without spawning
	// the overlay (test/diagnostic mode).
	Minimal bool
	// KeepPrivileges skips the post-probe CAP_BPF drop (tests only).
	KeepPrivileges bool
	// BounceCopy disables the direct process_vm data path in the blk
	// backend, restoring the unoptimised bounce-buffer copies — the
	// ablation for the optimisation §5 says doubled Phoronix scores.
	BounceCopy bool
	// Storage selects the block store serving the vmsh-blk image
	// ("" or "file" = the historic direct-mmap path; otherwise a
	// registered storage backend: "memory", "cow", "cas", "remote" —
	// each seeded with the image's content). Unknown names fail the
	// attach transaction.
	Storage string
	// PCITransport registers the devices with MSI-routed irqfds (the
	// virtio-over-PCI interrupt path), the extension §6.2 names as
	// future work for Cloud Hypervisor support. The register window
	// becomes the device's memory BAR; only interrupt routing
	// changes.
	PCITransport bool
	// Net, when non-nil, additionally serves a vmsh-net device cabled
	// into this switch — the multi-VM overlay network. The device runs
	// in the VMSH process like blk and console, reading virtqueues
	// through process_vm only.
	Net *netsim.Switch
	// NetLink sets the per-link parameters of this VM's switch port
	// (zero values fall back to the host cost model).
	NetLink netsim.LinkParams
	// LegacyVirtio disables the batched guest-memory fast path for the
	// hosted devices: per-field process_vm crossings, one interrupt
	// per chain — reproducing the pre-fast-path timing exactly. The
	// paper-reproduction experiments pin this on so Figures 5/6 keep
	// their measured shape; everything else gets the fast path.
	LegacyVirtio bool
	// Trace enables the host-wide virtual-time tracer for this attach:
	// every clock-charging layer records spans/events, exportable as
	// Chrome trace-event JSON via Host.Trace.WriteChrome. Tracing never
	// advances the clock, so enabling it leaves all virtual-time
	// results bit-identical.
	Trace bool
	// Fault, when non-nil, arms the host-wide deterministic fault
	// plane with this plan for the attach and the session that follows
	// it (device service passes keep checking the plan after attach).
	Fault *faults.Plan
	// Retry bounds per-stage retries of transient failures (EINTR/
	// EAGAIN-class). The zero value disables retry.
	Retry RetryPolicy
	// Record, when non-nil, observes every host crossing of this
	// attach and the session that follows it (the tap shares the
	// fault plane's stage and pause context, so rollback/detach undo
	// crossings are never recorded). The recording is finalized — end
	// vtime, per-memslot RAM hashes, session metrics — and written to
	// RecordSink when the session detaches; a failed attach finalizes
	// and writes the partial log so the failure can be replayed.
	Record *replay.Recorder
	// RecordSink, when non-nil alongside Record, is opened lazily to
	// persist the finalized log (e.g. a file-create closure).
	RecordSink func() (io.WriteCloser, error)
	// Verify, when non-nil, checks the live crossing stream of this
	// attach/session against a prior recording, latching the first
	// divergence (replay-verify mode). May be combined with Record.
	Verify *replay.Verifier
}

// VMSH is one instance of the host-side tool.
type VMSH struct {
	Host *hostsim.Host
	Proc *hostsim.Process
}

// New creates the VMSH process with the privileges the prototype
// needs: ptrace for injection, BPF for the memslot probe (§4.5).
func New(h *hostsim.Host) *VMSH {
	proc := h.NewProcess("vmsh", hostsim.Creds{UID: 0, Caps: map[hostsim.Capability]bool{
		hostsim.CapSysPtrace: true,
		hostsim.CapBPF:       true,
	}})
	return &VMSH{Host: h, Proc: proc}
}

// Attach side-loads into the hypervisor process identified by pid and
// returns a live session.
//
// Attach runs as a staged transaction: every stage registers an undo
// for each host- or guest-visible side effect it applies (injected
// mmaps, the library memslot, page-table entry writes, created fds,
// the saved vCPU register file). A failure at any stage rolls all of
// them back — leaving the guest byte-identical to its pre-attach
// state — and surfaces as a typed *AttachError naming the stage.
// Transient failures (EINTR/EAGAIN-class) unwind only their own stage
// and retry under opts.Retry with vclock-charged exponential backoff.
func (v *VMSH) Attach(pid int, opts Options) (*Session, error) {
	h := v.Host
	if opts.Fault != nil {
		h.SetFaultPlan(opts.Fault)
	}
	tapped := opts.Record != nil || opts.Verify != nil
	if tapped {
		if h.Faults == nil {
			// The crossing tap rides on the injector's stage/pause
			// context; an armed-but-empty plan is proven perturbation-
			// free by the E8 invariant (zero vtime shift).
			h.SetFaultPlan(faults.NewPlan(0))
		}
		switch {
		case opts.Record != nil && opts.Verify != nil:
			h.SetTap(faults.Tee(opts.Record, opts.Verify))
		case opts.Record != nil:
			h.SetTap(opts.Record)
		default:
			h.SetTap(opts.Verify)
		}
	}
	target, ok := h.Process(pid)
	if !ok {
		return nil, &AttachError{PID: pid, Err: ErrNoProcess}
	}
	if opts.Trace {
		h.Trace.Enable()
	}
	trAttach := h.Trace.Track("vmsh:attach")
	spAttach := trAttach.Span("attach", "attach")

	tx := newAttachTx(h, pid, opts.Retry)
	fail := func(stage string, err error) (*Session, error) {
		tx.rollback()
		if tapped {
			h.SetTap(nil)
			if opts.Record != nil {
				// Seal and persist the partial log: a failed attach is
				// exactly the kind of run worth replaying.
				opts.Record.Finalize(nil, nil)
				_ = writeRecording(opts.Record, opts.RecordSink)
			}
		}
		return nil, &AttachError{Stage: stage, PID: pid, Err: err}
	}

	// --- 1. fd discovery via /proc --------------------------------
	vmFD := -1
	var vcpuFDs []int
	if err := tx.run("fd_discovery", func() error {
		sp := trAttach.Span("attach", "fd_discovery")
		fds, err := h.ProcFDInfo(v.Proc, pid)
		if err != nil {
			return fmt.Errorf("reading /proc/%d/fd: %w", pid, err)
		}
		vmFD, vcpuFDs = -1, nil
		for _, fi := range fds {
			if fi.Link == "anon_inode:kvm-vm" {
				vmFD = fi.Num
			}
			if strings.HasPrefix(fi.Link, "anon_inode:kvm-vcpu:") {
				vcpuFDs = append(vcpuFDs, fi.Num)
			}
		}
		if vmFD < 0 || len(vcpuFDs) == 0 {
			return ErrNotHypervisor
		}
		sp.End1("fds", int64(len(fds)))
		return nil
	}); err != nil {
		return fail("fd_discovery", err)
	}

	// --- 2. ptrace attach + interrupt ------------------------------
	if err := tx.run("ptrace_interrupt", func() error {
		sp := trAttach.Span("attach", "ptrace_interrupt")
		tr, err := v.Proc.Attach(target)
		if err != nil {
			return err
		}
		tx.tracer, tx.tid = tr, target.MainThread()
		tx.onUndo("ptrace_detach", func() error {
			if tx.tracer == nil {
				return nil
			}
			err := tx.tracer.Detach()
			tx.tracer = nil
			if errors.Is(err, hostsim.ErrNotTraced) {
				return nil
			}
			return err
		})
		if err := tr.InterruptAll(); err != nil {
			return err
		}
		sp.End()
		return nil
	}); err != nil {
		return fail("ptrace_interrupt", err)
	}

	// --- 3. memslots via the eBPF kvm_vm_ioctl probe ----------------
	var pm *procMem
	var reg *obs.Registry
	if err := tx.run("memslot_probe", func() error {
		sp := trAttach.Span("attach", "memslot_probe")
		var slots []kvm.MemSlotInfo
		probe, err := h.AttachKProbe(v.Proc, "kvm_vm_ioctl", func(d any) {
			if s, ok := d.([]kvm.MemSlotInfo); ok {
				slots = s
			}
		})
		if err != nil {
			return fmt.Errorf("attaching eBPF probe: %w", err)
		}
		tx.onUndo("kprobe_close", func() error { probe.Close(); return nil })
		if _, err := tx.inject(hostsim.SysIoctl, uint64(vmFD), kvm.KVMCheckExtension, 0); err != nil {
			return fmt.Errorf("triggering kvm_vm_ioctl: %w", err)
		}
		probe.Close()
		if !opts.KeepPrivileges {
			// Privilege drop (§4.5): everything after here runs with
			// ptrace rights only.
			v.Proc.DropCapability(hostsim.CapBPF)
		}
		if len(slots) == 0 {
			return ErrNoMemslots
		}
		reg = obs.NewRegistry()
		pm = newProcMem(h, v.Proc, pid, slots, reg)
		sp.End1("slots", int64(len(slots)))
		return nil
	}); err != nil {
		return fail("memslot_probe", err)
	}

	// --- 4. page-table root + kernel discovery ----------------------
	// The target's architecture selects the sregs layout (CR3 vs
	// TTBR0_EL1), the page-table descriptor format and the KASLR
	// window — the three axes of the arm64 port (§5).
	tArch := target.Arch
	var scratch uint64
	var cr3 mem.GPA
	var kernelRun *pagetable.Mapped
	var version guestos.Version
	var scan *ksym.ScanResult
	if err := tx.run("kernel_scan", func() error {
		sp := trAttach.Span("attach", "kernel_scan")
		s, err := tx.inject(hostsim.SysMmap, 0, 4096, 3,
			hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
		if err != nil {
			return fmt.Errorf("injected mmap: %w", err)
		}
		scratch = s
		tx.onUndo("munmap_scratch", func() error {
			_, err := tx.inject(hostsim.SysMunmap, s, 4096)
			return err
		})
		if _, err := tx.inject(hostsim.SysIoctl, uint64(vcpuFDs[0]), kvm.KVMGetSregs, scratch); err != nil {
			return fmt.Errorf("KVM_GET_SREGS: %w", err)
		}
		sregsRaw := make([]byte, kvm.SregsStructSize)
		if err := h.ProcessVMRead(v.Proc, pid, mem.HVA(scratch), sregsRaw); err != nil {
			return err
		}
		cr3 = mem.GPA(hostsim.DecodeU64(sregsRaw, kvm.PageTableRootOffset(tArch)/8))

		walker := &pagetable.Walker{R: pm, Root: cr3, Fmt: guestos.PageFormat(tArch)}
		kaslrBase, kaslrEnd := guestos.KASLRWindow(tArch)
		kernelRun = nil
		err = walker.VisitRange(kaslrBase, kaslrEnd, func(r pagetable.Mapped) bool {
			if r.Size >= 1<<20 {
				kernelRun = &r
				return false
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("page-table walk: %w", err)
		}
		if kernelRun == nil {
			return ErrKernelNotFound
		}

		img := make([]byte, kernelRun.Size)
		if err := pm.ReadPhys(kernelRun.GPA, img); err != nil {
			return fmt.Errorf("reading kernel image: %w", err)
		}
		if version, err = detectVersion(img); err != nil {
			return err
		}
		if scan, err = ksym.Scan(img, kernelRun.GVA); err != nil {
			return fmt.Errorf("%w: %v", ErrKsymNotFound, err)
		}
		sp.End2("kernel_bytes", int64(len(img)), "symbols", int64(len(scan.Symbols)))
		return nil
	}); err != nil {
		return fail("kernel_scan", err)
	}

	// --- 5. build + relocate the library ----------------------------
	var blob []byte
	var hdr *guestlib.Header
	if err := tx.run("build_blob", func() error {
		sp := trAttach.Span("attach", "build_blob")
		params := blobParams{
			version:  version,
			blkBase:  vmshBlkBase,
			blkGSI:   vmshBlkGSI,
			consBase: vmshConsBase,
			consGSI:  vmshConsGSI,
			net:      opts.Net != nil,
			netBase:  vmshNetBase,
			netGSI:   vmshNetGSI,
			minimal:  opts.Minimal,
			overlay: overlay.Options{
				Console:      "hvc-vmsh",
				BlkDev:       "vmshblk0",
				ContainerPID: opts.ContainerPID,
				SpawnShell:   !opts.NoShell,
			},
		}
		var err error
		if blob, err = buildBlob(params); err != nil {
			return err
		}
		if hdr, err = guestlib.ParseHeader(blob); err != nil {
			return err
		}
		for i := 0; i < int(hdr.RelocCnt); i++ {
			name, err := hdr.RelocName(blob, i)
			if err != nil {
				return err
			}
			gva, ok := scan.Symbols[name]
			if !ok {
				return fmt.Errorf("%w: kernel %s does not export %q", ErrKsymNotFound, version, name)
			}
			patchU64(blob, hdr.RelocSlotOffset(i), uint64(gva))
		}
		sp.End1("blob_bytes", int64(len(blob)))
		return nil
	}); err != nil {
		return fail("build_blob", err)
	}

	// --- 6. new memslot at the top of guest physical space ----------
	var libGPA mem.GPA
	var libGVA mem.GVA
	if err := tx.run("inject_library", func() error {
		sp := trAttach.Span("attach", "inject_library")
		libGPA = mem.GPA(mem.PageAlign(uint64(pm.maxGPAEnd()) + 2<<20))
		libHVA, err := tx.inject(hostsim.SysMmap, 0, vmshSlotSize, 3,
			hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
		if err != nil {
			return fmt.Errorf("injected mmap for memslot: %w", err)
		}
		tx.onUndo("munmap_library", func() error {
			_, err := tx.inject(hostsim.SysMunmap, libHVA, vmshSlotSize)
			return err
		})
		region := make([]byte, 32)
		putU32(region[0:], vmshSlotNum)
		putU64(region[8:], uint64(libGPA))
		putU64(region[16:], vmshSlotSize)
		putU64(region[24:], libHVA)
		if err := h.ProcessVMWrite(v.Proc, pid, mem.HVA(scratch), region); err != nil {
			return err
		}
		if _, err := tx.inject(hostsim.SysIoctl, uint64(vmFD), kvm.KVMSetUserMemoryRegion, scratch); err != nil {
			return fmt.Errorf("KVM_SET_USER_MEMORY_REGION: %w", err)
		}
		tx.onUndo("delete_memslot", func() error {
			// memory_size 0 deletes the numbered slot (real KVM
			// semantics), taking the library back out of guest
			// physical space.
			del := make([]byte, 32)
			putU32(del[0:], vmshSlotNum)
			if err := h.ProcessVMWrite(v.Proc, pid, mem.HVA(scratch), del); err != nil {
				return err
			}
			_, err := tx.inject(hostsim.SysIoctl, uint64(vmFD), kvm.KVMSetUserMemoryRegion, scratch)
			return err
		})
		pm.addSlot(kvm.MemSlotInfo{Slot: vmshSlotNum, GPA: libGPA, Size: vmshSlotSize, HVA: mem.HVA(libHVA)})
		tx.onUndo("forget_memslot", func() error { pm.removeSlot(vmshSlotNum); return nil })

		if err := pm.WritePhys(libGPA, blob); err != nil {
			return fmt.Errorf("uploading library: %w", err)
		}

		// Map the library right after the kernel image (§4.2), using
		// page-table pages from VMSH's own slot so no guest allocator
		// is involved. Every entry write is journaled so rollback can
		// restore the guest tables to their exact prior bytes.
		libGVA = kernelRun.GVA + mem.GVA(kernelRun.Size)
		sideAlloc := mem.NewBumpAlloc(libGPA+mem.GPA(mem.PageAlign(uint64(len(blob)))), libGPA+mem.GPA(vmshSlotSize))
		mapper := pagetable.AttachMapper(pm, sideAlloc, cr3)
		mapper.Fmt = guestos.PageFormat(tArch)
		mapper.StartJournal()
		tx.onUndo("undo_pagetable", mapper.UndoJournal)
		if err := mapper.MapRange(libGVA, libGPA, mem.PageAlign(uint64(len(blob))),
			pagetable.FlagWrite|pagetable.FlagGlobal); err != nil {
			return fmt.Errorf("mapping library: %w", err)
		}
		sp.End()
		return nil
	}); err != nil {
		return fail("inject_library", err)
	}

	// --- 7. devices: irqfds, trap, external hosting -----------------
	sess := &Session{
		v: v, target: target, tracer: tx.tracer, pm: pm, reg: reg, tx: tx,
		vmFD: vmFD, vcpuFDs: vcpuFDs,
		libGPA: libGPA, libGVA: libGVA, hdr: hdr,
		trap: opts.Trap, version: version, kernelBase: kernelRun.GVA,
		image: opts.Image, storage: opts.Storage,
		record: opts.Record, recordSink: opts.RecordSink, tapped: tapped,
	}
	if err := tx.run("setup_devices", func() error {
		sp := trAttach.Span("attach", "setup_devices")
		sess.tracer = tx.tracer
		if err := sess.setupDevices(tx, scratch, opts); err != nil {
			return err
		}
		sp.End()
		return nil
	}); err != nil {
		return fail("setup_devices", err)
	}

	// --- 8. hijack the instruction pointer and resume ----------------
	if err := tx.run("rip_flip", func() error {
		sp := trAttach.Span("attach", "rip_flip")
		if _, err := tx.inject(hostsim.SysIoctl, uint64(vcpuFDs[0]), kvm.KVMGetRegs, scratch); err != nil {
			return fmt.Errorf("KVM_GET_REGS: %w", err)
		}
		regsRaw := make([]byte, kvm.RegsStructSize(tArch))
		if err := h.ProcessVMRead(v.Proc, pid, mem.HVA(scratch), regsRaw); err != nil {
			return err
		}
		// Register the register-file restore before touching it. Once
		// the guest resumed this undo is skipped: the library's
		// trampoline owns the restore from then on, and re-writing the
		// saved snapshot would rewind a running guest.
		orig := append([]byte(nil), regsRaw...)
		tx.onUndoSkipResumed("restore_vcpu_regs", func() error {
			if err := h.ProcessVMWrite(v.Proc, pid, mem.HVA(scratch), orig); err != nil {
				return err
			}
			_, err := tx.inject(hostsim.SysIoctl, uint64(vcpuFDs[0]), kvm.KVMSetRegs, scratch)
			return err
		})
		ipIdx := kvm.InstrPtrIndex(tArch)
		origRIP := hostsim.DecodeU64(regsRaw, ipIdx)
		// Pre-store the resume instruction pointer in the trampoline
		// save area (slot 16 by blob convention on both
		// architectures).
		var ripRaw [8]byte
		putU64(ripRaw[:], origRIP)
		if err := pm.WritePhys(libGPA+mem.GPA(hdr.SavedOff+16*8), ripRaw[:]); err != nil {
			return err
		}
		patchU64(regsRaw, uint64(ipIdx*8), uint64(libGVA))
		if err := h.ProcessVMWrite(v.Proc, pid, mem.HVA(scratch), regsRaw); err != nil {
			return err
		}
		if _, err := tx.inject(hostsim.SysIoctl, uint64(vcpuFDs[0]), kvm.KVMSetRegs, scratch); err != nil {
			return fmt.Errorf("KVM_SET_REGS: %w", err)
		}

		// Resume: the in-flight KVM_RUN re-enters the guest, which now
		// executes the library. From here the stage must not re-run —
		// re-flipping an instruction pointer that already points into
		// the library would corrupt the guest — so the status poll
		// below retries at the operation level only.
		if err := tx.tracer.ResumeAll(); err != nil {
			return err
		}
		tx.resumed = true

		// Poll the shared sync page for the library's verdict.
		status, err := retryOp(tx, func() (uint64, error) {
			return sess.readSync(guestlib.SyncStatus)
		})
		if err != nil {
			return err
		}
		if status&guestlib.StatusErrorBase != 0 {
			return fmt.Errorf("%w: library reported error %#x (see guest log)", ErrLibraryFailed, status)
		}
		if status != guestlib.StatusReady {
			return fmt.Errorf("%w: library did not become ready (status %d)", ErrLibraryFailed, status)
		}
		sp.End()
		return nil
	}); err != nil {
		return fail("rip_flip", err)
	}
	spAttach.End()

	// In ioregionfd mode ptrace was only needed during setup; the
	// detach-time cleanup re-attaches. (The session's trap field
	// carries the *resolved* mode: TrapAuto has already collapsed to
	// whichever mechanism worked.)
	if sess.trap == TrapIoregionfd {
		_ = tx.tracer.Detach()
		tx.tracer = nil
		sess.tracer = nil
	}
	return sess, nil
}

// detectVersion parses the "Linux version X.Y" banner out of the
// kernel image bytes.
func detectVersion(img []byte) (guestos.Version, error) {
	const marker = "Linux version "
	idx := bytes.Index(img, []byte(marker))
	if idx < 0 {
		return guestos.Version{}, fmt.Errorf("vmsh: no version banner in kernel image")
	}
	rest := img[idx+len(marker):]
	end := 0
	dots := 0
	for end < len(rest) && end < 16 {
		c := rest[end]
		if c == '.' {
			dots++
			if dots == 2 {
				break
			}
		} else if c < '0' || c > '9' {
			break
		}
		end++
	}
	return guestos.ParseVersion(string(rest[:end]))
}

// writeRecording persists a finalized recording through the lazy sink;
// a nil sink means the caller only wanted the in-memory log.
func writeRecording(rec *replay.Recorder, sink func() (io.WriteCloser, error)) error {
	if rec == nil || sink == nil {
		return nil
	}
	w, err := sink()
	if err != nil {
		return fmt.Errorf("vmsh: opening record sink: %w", err)
	}
	encErr := rec.Log().Encode(w)
	closeErr := w.Close()
	if encErr != nil {
		return fmt.Errorf("vmsh: writing recording: %w", encErr)
	}
	if closeErr != nil {
		return fmt.Errorf("vmsh: closing record sink: %w", closeErr)
	}
	return nil
}

func patchU64(b []byte, off uint64, v uint64) {
	putU64(b[off:], v)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
