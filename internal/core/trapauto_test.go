package core

import (
	"testing"

	"vmsh/internal/hypervisor"
)

// TestTrapAutoPrefersIoregionfd: on a patched host kernel the auto
// mode lands on the fast path and detaches ptrace after setup.
func TestTrapAutoPrefersIoregionfd(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	sess := attach(t, h, inst, Options{Trap: TrapAuto})
	if sess.Trap() != TrapIoregionfd {
		t.Fatalf("resolved to %v", sess.Trap())
	}
	if inst.Proc.Traced() {
		t.Fatal("tracer left behind on the fast path")
	}
	if _, err := sess.Exec("echo fast"); err != nil {
		t.Fatal(err)
	}
}

// TestTrapAutoFallsBackWithoutPatch: a stock host kernel rejects
// KVM_SET_IOREGION with ENOSYS and VMSH transparently uses the ptrace
// trap instead.
func TestTrapAutoFallsBackWithoutPatch(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	h.NoIoregionfd = true
	sess := attach(t, h, inst, Options{Trap: TrapAuto})
	if sess.Trap() != TrapWrapSyscall {
		t.Fatalf("resolved to %v", sess.Trap())
	}
	if !inst.Proc.SyscallTaxed() {
		t.Fatal("wrap_syscall tax not active after fallback")
	}
	if _, err := sess.Exec("echo slow-but-working"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
}

// TestExplicitIoregionfdFailsWithoutPatch: when the user forces the
// fast path on an unpatched kernel, attach fails loudly instead of
// silently degrading.
func TestExplicitIoregionfdFailsWithoutPatch(t *testing.T) {
	h, inst := launch(t, hypervisor.QEMU, "5.10")
	h.NoIoregionfd = true
	v := New(h)
	img := buildToolImage(t, h, "noior.img")
	if _, err := v.Attach(inst.Proc.PID, Options{Image: img, Trap: TrapIoregionfd}); err == nil {
		t.Fatal("forced ioregionfd attach succeeded on an unpatched kernel")
	}
}
