package simplefs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"vmsh/internal/blockdev"
	"vmsh/internal/fserr"
)

// memDevice is an in-memory block device for tests.
type memDevice struct {
	data []byte
	fua  bool
}

func (m *memDevice) ReadAt(off int64, buf []byte) error {
	if err := blockdev.CheckAligned(off, len(buf)); err != nil {
		return err
	}
	copy(buf, m.data[off:])
	return nil
}
func (m *memDevice) WriteAt(off int64, buf []byte) error {
	if err := blockdev.CheckAligned(off, len(buf)); err != nil {
		return err
	}
	copy(m.data[off:], buf)
	return nil
}
func (m *memDevice) Flush() error      { return nil }
func (m *memDevice) Size() int64       { return int64(len(m.data)) }
func (m *memDevice) SupportsFUA() bool { return m.fua }
func (m *memDevice) SetQueueDepth(int) {}

func newFS(t *testing.T, mb int, fua bool) (*FS, *memDevice) {
	t.Helper()
	dev := &memDevice{data: make([]byte, mb<<20), fua: fua}
	if err := Mkfs(dev, MkfsOptions{}); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func TestMkfsMountRoundTrip(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, err := fs.Root()
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsDir() {
		t.Fatal("root is not a directory")
	}
	st := fs.Statfs()
	if st.BlocksFree == 0 || st.InodesFree == 0 {
		t.Fatalf("statfs = %+v", st)
	}
}

func TestMountBadMagic(t *testing.T) {
	dev := &memDevice{data: make([]byte, 1<<20)}
	if _, err := Mount(dev); err == nil {
		t.Fatal("mounted an unformatted device")
	}
}

func TestCreateLookupReadWrite(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	f, err := root.Create("hello.txt", 0o644, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("persist me")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	got, err := root.Lookup("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if n, err := got.ReadAt(buf, 0); err != nil || n != len(msg) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("data mismatch")
	}
	if got.Stat().Mode&ModePermMask != 0o644 {
		t.Fatalf("mode = %o", got.Stat().Mode)
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	fs, dev := newFS(t, 8, true)
	root, _ := fs.Root()
	f, _ := root.Create("file", 0o600, 42, 42)
	data := bytes.Repeat([]byte("xyz"), 5000)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Mkdir("sub", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	root2, _ := fs2.Root()
	f2, err := root2.Lookup("file")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across remount")
	}
	if f2.Stat().UID != 42 {
		t.Fatal("ownership lost")
	}
	if _, err := root2.Lookup("sub"); err != nil {
		t.Fatal("directory lost")
	}
}

func TestLargeFileIndirectBlocks(t *testing.T) {
	fs, _ := newFS(t, 64, true)
	root, _ := fs.Root()
	f, _ := root.Create("big", 0o644, 0, 0)
	// Past 12 direct (48 KiB) and past indirect (48 KiB + 4 MiB):
	// write at 5 MiB to exercise the double-indirect path.
	probePoints := []int64{0, 40 << 10, 100 << 10, 5 << 20}
	for i, off := range probePoints {
		chunk := bytes.Repeat([]byte{byte(i + 1)}, 8192)
		if _, err := f.WriteAt(chunk, off); err != nil {
			t.Fatalf("write at %d: %v", off, err)
		}
	}
	for i, off := range probePoints {
		buf := make([]byte, 8192)
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		want := bytes.Repeat([]byte{byte(i + 1)}, 8192)
		if !bytes.Equal(buf, want) {
			t.Fatalf("data at %d corrupted", off)
		}
	}
	// Holes between the probe points read as zeros.
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 1<<20); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole is not zero")
		}
	}
}

func TestSparseFileAccounting(t *testing.T) {
	fs, _ := newFS(t, 16, true)
	root, _ := fs.Root()
	f, _ := root.Create("sparse", 0o644, 7, 7)
	free0 := fs.Statfs().BlocksFree
	if _, err := f.WriteAt([]byte("end"), 2<<20); err != nil {
		t.Fatal(err)
	}
	used := free0 - fs.Statfs().BlocksFree
	if used > 4 { // 1 data block + pointer blocks, not 512
		t.Fatalf("sparse write consumed %d blocks", used)
	}
	if f.Stat().Size != 2<<20+3 {
		t.Fatalf("size = %d", f.Stat().Size)
	}
}

func TestTruncateShrinkFreesBlocks(t *testing.T) {
	fs, _ := newFS(t, 16, true)
	root, _ := fs.Root()
	f, _ := root.Create("t", 0o644, 0, 0)
	data := make([]byte, 1<<20)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	freeAfterWrite := fs.Statfs().BlocksFree
	if err := f.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	if fs.Statfs().BlocksFree <= freeAfterWrite {
		t.Fatal("truncate freed nothing")
	}
	if f.Stat().Size != 4096 {
		t.Fatalf("size = %d", f.Stat().Size)
	}
}

func TestTruncateTailZeroed(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	f, _ := root.Create("t", 0o644, 0, 0)
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xff}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 4096; i++ {
		if buf[i] != 0 {
			t.Fatalf("stale byte %#x at %d after truncate up", buf[i], i)
		}
	}
}

func TestUnlinkFreesSpace(t *testing.T) {
	fs, _ := newFS(t, 16, true)
	root, _ := fs.Root()
	// First cycle lets the root directory grow its entry block, which
	// legitimately stays allocated afterwards; steady state must then
	// be leak-free.
	cycle := func() {
		f, err := root.Create("gone", 0o644, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, 256<<10), 0); err != nil {
			t.Fatal(err)
		}
		if err := root.Unlink("gone"); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	free0 := fs.Statfs()
	cycle()
	after := fs.Statfs()
	if after.BlocksFree != free0.BlocksFree || after.InodesFree != free0.InodesFree {
		t.Fatalf("space leaked: %+v vs %+v", free0, after)
	}
	if _, err := root.Lookup("gone"); err != fserr.ErrNotFound {
		t.Fatalf("lookup after unlink = %v", err)
	}
}

func TestHardLinks(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	f, _ := root.Create("a", 0o644, 0, 0)
	if _, err := f.WriteAt([]byte("shared"), 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Link(f, "b"); err != nil {
		t.Fatal(err)
	}
	if f.Stat().Nlink != 2 {
		t.Fatalf("nlink = %d", f.Stat().Nlink)
	}
	if err := root.Unlink("a"); err != nil {
		t.Fatal(err)
	}
	b, err := root.Lookup("b")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := b.ReadAt(buf, 0); err != nil || string(buf) != "shared" {
		t.Fatalf("data via second link: %q %v", buf, err)
	}
	if b.Stat().Nlink != 1 {
		t.Fatalf("nlink after unlink = %d", b.Stat().Nlink)
	}
	// Hard links to directories are forbidden.
	d, _ := root.Mkdir("d", 0o755, 0, 0)
	if err := root.Link(d, "dlink"); err == nil {
		t.Fatal("hard link to directory accepted")
	}
}

func TestSymlinks(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	if _, err := root.Symlink("ln", "/target/path", 0, 0); err != nil {
		t.Fatal(err)
	}
	ln, _ := root.Lookup("ln")
	if !ln.IsSymlink() {
		t.Fatal("not a symlink")
	}
	target, err := ln.Readlink()
	if err != nil || target != "/target/path" {
		t.Fatalf("readlink = %q, %v", target, err)
	}
	f, _ := root.Create("plain", 0o644, 0, 0)
	_ = f
	plain, _ := root.Lookup("plain")
	if _, err := plain.Readlink(); err == nil {
		t.Fatal("readlink on regular file succeeded")
	}
}

func TestMkdirRmdirSemantics(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	d, err := root.Mkdir("dir", 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if root.Stat().Nlink != 3 { // 2 + subdir
		t.Fatalf("root nlink = %d", root.Stat().Nlink)
	}
	if _, err := d.Create("f", 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("dir"); err != fserr.ErrNotEmpty {
		t.Fatalf("rmdir non-empty = %v", err)
	}
	if err := d.Unlink("f"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir("dir"); err != nil {
		t.Fatal(err)
	}
	if root.Stat().Nlink != 2 {
		t.Fatalf("root nlink after rmdir = %d", root.Stat().Nlink)
	}
	if err := root.Rmdir("missing"); err != fserr.ErrNotFound {
		t.Fatalf("rmdir missing = %v", err)
	}
}

func TestRenameSemantics(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	a, _ := root.Create("a", 0o644, 0, 0)
	_, _ = a.WriteAt([]byte("A"), 0)
	sub, _ := root.Mkdir("sub", 0o755, 0, 0)

	// Plain rename.
	if err := root.Rename("a", root, "a2"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Lookup("a"); err != fserr.ErrNotFound {
		t.Fatal("old name still present")
	}
	// Cross-directory rename moves nlink for dirs.
	d2, _ := root.Mkdir("d2", 0o755, 0, 0)
	if err := root.Rename("d2", sub, "moved"); err != nil {
		t.Fatal(err)
	}
	if root.Stat().Nlink != 3 || sub.Stat().Nlink != 3 {
		t.Fatalf("nlinks after dir move: root=%d sub=%d", root.Stat().Nlink, sub.Stat().Nlink)
	}
	_ = d2
	// Replace an existing file.
	b, _ := root.Create("b", 0o644, 0, 0)
	_, _ = b.WriteAt([]byte("B"), 0)
	if err := root.Rename("a2", root, "b"); err != nil {
		t.Fatal(err)
	}
	got, _ := root.Lookup("b")
	buf := make([]byte, 1)
	_, _ = got.ReadAt(buf, 0)
	if buf[0] != 'A' {
		t.Fatalf("replaced content = %q", buf)
	}
	// File over directory fails.
	f3, _ := root.Create("f3", 0o644, 0, 0)
	_ = f3
	if err := root.Rename("f3", root, "sub"); err != fserr.ErrIsDir {
		t.Fatalf("file-over-dir rename = %v", err)
	}
	// Directory over non-empty directory fails.
	root2, _ := root.Mkdir("victim", 0o755, 0, 0)
	_, _ = root2.Create("occupied", 0o644, 0, 0)
	d4, _ := root.Mkdir("d4", 0o755, 0, 0)
	_ = d4
	if err := root.Rename("d4", root, "victim"); err != fserr.ErrNotEmpty {
		t.Fatalf("dir-over-nonempty rename = %v", err)
	}
}

func TestReadDirListing(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	names := []string{"one", "two", "three"}
	for _, n := range names {
		if _, err := root.Create(n, 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := root.ReadDir()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 {
		t.Fatalf("%d entries", len(ents))
	}
	seen := map[string]bool{}
	for _, e := range ents {
		seen[e.Name] = true
		if e.Type != ModeFile {
			t.Fatalf("entry %s type %#x", e.Name, e.Type)
		}
	}
	for _, n := range names {
		if !seen[n] {
			t.Fatalf("missing %s", n)
		}
	}
}

func TestManyFilesDirGrowth(t *testing.T) {
	fs, _ := newFS(t, 32, true)
	root, _ := fs.Root()
	const count = 100 // > one dir block (16 slots)
	for i := 0; i < count; i++ {
		if _, err := root.Create(fmt.Sprintf("file-%03d", i), 0o644, 0, 0); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, _ := root.ReadDir()
	if len(ents) != count {
		t.Fatalf("listed %d of %d", len(ents), count)
	}
	for i := 0; i < count; i += 7 {
		if err := root.Unlink(fmt.Sprintf("file-%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Freed slots are reused.
	if _, err := root.Create("reuse", 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateCreateRejected(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	if _, err := root.Create("x", 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create("x", 0o644, 0, 0); err != fserr.ErrExists {
		t.Fatalf("duplicate create = %v", err)
	}
	if _, err := root.Mkdir("x", 0o755, 0, 0); err != fserr.ErrExists {
		t.Fatalf("mkdir over file = %v", err)
	}
}

func TestNameTooLong(t *testing.T) {
	fs, _ := newFS(t, 8, true)
	root, _ := fs.Root()
	long := string(bytes.Repeat([]byte("n"), maxName+1))
	if _, err := root.Create(long, 0o644, 0, 0); err != fserr.ErrNameTooLong {
		t.Fatalf("overlong name = %v", err)
	}
}

func TestENOSPC(t *testing.T) {
	dev := &memDevice{data: make([]byte, 1<<20), fua: true} // 256 blocks
	if err := Mkfs(dev, MkfsOptions{}); err != nil {
		t.Fatal(err)
	}
	fs, _ := Mount(dev)
	root, _ := fs.Root()
	f, _ := root.Create("filler", 0o644, 0, 0)
	_, err := f.WriteAt(make([]byte, 2<<20), 0)
	if err != fserr.ErrNoSpace {
		t.Fatalf("overfill = %v", err)
	}
	// The filesystem stays usable.
	if err := root.Unlink("filler"); err != nil {
		t.Fatal(err)
	}
	f2, _ := root.Create("small", 0o644, 0, 0)
	if _, err := f2.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaAccounting(t *testing.T) {
	fs, _ := newFS(t, 16, true)
	root, _ := fs.Root()
	f, _ := root.Create("u7file", 0o644, 7, 7)
	if _, err := f.WriteAt(make([]byte, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.QuotaReport()
	if err != nil {
		t.Fatal(err)
	}
	var u7 *QuotaUsage
	for i := range rep {
		if rep[i].UID == 7 {
			u7 = &rep[i]
		}
	}
	if u7 == nil || u7.Blocks < 16 || u7.Inodes != 1 {
		t.Fatalf("uid7 usage = %+v", u7)
	}
	// Usage drops on unlink.
	if err := root.Unlink("u7file"); err != nil {
		t.Fatal(err)
	}
	rep, _ = fs.QuotaReport()
	for _, q := range rep {
		if q.UID == 7 && (q.Blocks != 0 || q.Inodes != 0) {
			t.Fatalf("uid7 after unlink = %+v", q)
		}
	}
}

func TestQuotaChownMovesUsage(t *testing.T) {
	fs, _ := newFS(t, 16, true)
	root, _ := fs.Root()
	f, _ := root.Create("f", 0o644, 1, 1)
	if _, err := f.WriteAt(make([]byte, 32<<10), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Chown(2, 2); err != nil {
		t.Fatal(err)
	}
	rep, _ := fs.QuotaReport()
	var u1, u2 QuotaUsage
	for _, q := range rep {
		if q.UID == 1 {
			u1 = q
		}
		if q.UID == 2 {
			u2 = q
		}
	}
	if u1.Blocks != 0 || u1.Inodes != 0 {
		t.Fatalf("old owner still charged: %+v", u1)
	}
	if u2.Blocks < 8 || u2.Inodes != 1 {
		t.Fatalf("new owner not charged: %+v", u2)
	}
}

func TestQuotaPersistsWithFUA(t *testing.T) {
	fs, dev := newFS(t, 16, true)
	root, _ := fs.Root()
	f, _ := root.Create("f", 0o644, 9, 9)
	_, _ = f.WriteAt(make([]byte, 16<<10), 0)
	_ = fs.Sync()
	fs2, err := Mount(dev)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fs2.QuotaReport()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range rep {
		if q.UID == 9 && q.Inodes == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("quota not persisted: %+v", rep)
	}
}

func TestQuotaDisabledWithoutFUA(t *testing.T) {
	// This is the §6.1 mechanism: the virtio devices never negotiate
	// FUA, so quota reporting fails there while everything else works.
	fs, _ := newFS(t, 16, false)
	if _, err := fs.QuotaReport(); err == nil {
		t.Fatal("quota report without FUA succeeded")
	}
	root, _ := fs.Root()
	f, err := root.Create("works", 0o644, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("fine"), 0); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadProperty(t *testing.T) {
	fs, _ := newFS(t, 32, true)
	root, _ := fs.Root()
	f, _ := root.Create("prop", 0o644, 0, 0)
	// Model: a shadow byte slice mirrors every write.
	shadow := make([]byte, 1<<20)
	var maxEnd int64
	rnd := rand.New(rand.NewSource(11))
	prop := func(off16 uint16, size8 uint8) bool {
		off := int64(off16) % (1 << 19)
		size := int(size8)%2048 + 1
		data := make([]byte, size)
		rnd.Read(data)
		if _, err := f.WriteAt(data, off); err != nil {
			return false
		}
		copy(shadow[off:], data)
		if off+int64(size) > maxEnd {
			maxEnd = off + int64(size)
		}
		// Read back a random window inside the written extent.
		roff := int64(rnd.Intn(int(maxEnd)))
		rlen := rnd.Intn(int(maxEnd-roff)) + 1
		buf := make([]byte, rlen)
		if _, err := f.ReadAt(buf, roff); err != nil {
			return false
		}
		return bytes.Equal(buf, shadow[roff:roff+int64(rlen)])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
