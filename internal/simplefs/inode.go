package simplefs

import (
	"encoding/binary"
	"fmt"

	"vmsh/internal/fserr"
	"vmsh/internal/storage"
)

// dinode is the on-disk inode layout (128 bytes).
type dinode struct {
	Mode      uint32
	UID       uint32
	GID       uint32
	Nlink     uint32
	Size      uint64
	Atime     uint64
	Mtime     uint64
	Ctime     uint64
	Direct    [12]uint32
	Indirect  uint32
	DIndirect uint32
}

func (d *dinode) encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], d.Mode)
	binary.LittleEndian.PutUint32(b[4:], d.UID)
	binary.LittleEndian.PutUint32(b[8:], d.GID)
	binary.LittleEndian.PutUint32(b[12:], d.Nlink)
	binary.LittleEndian.PutUint64(b[16:], d.Size)
	binary.LittleEndian.PutUint64(b[24:], d.Atime)
	binary.LittleEndian.PutUint64(b[32:], d.Mtime)
	binary.LittleEndian.PutUint64(b[40:], d.Ctime)
	for i, p := range d.Direct {
		binary.LittleEndian.PutUint32(b[48+i*4:], p)
	}
	binary.LittleEndian.PutUint32(b[96:], d.Indirect)
	binary.LittleEndian.PutUint32(b[100:], d.DIndirect)
}

func decodeInode(b []byte) dinode {
	var d dinode
	d.Mode = binary.LittleEndian.Uint32(b[0:])
	d.UID = binary.LittleEndian.Uint32(b[4:])
	d.GID = binary.LittleEndian.Uint32(b[8:])
	d.Nlink = binary.LittleEndian.Uint32(b[12:])
	d.Size = binary.LittleEndian.Uint64(b[16:])
	d.Atime = binary.LittleEndian.Uint64(b[24:])
	d.Mtime = binary.LittleEndian.Uint64(b[32:])
	d.Ctime = binary.LittleEndian.Uint64(b[40:])
	for i := range d.Direct {
		d.Direct[i] = binary.LittleEndian.Uint32(b[48+i*4:])
	}
	d.Indirect = binary.LittleEndian.Uint32(b[96:])
	d.DIndirect = binary.LittleEndian.Uint32(b[100:])
	return d
}

func (f *FS) inodeLoc(ino uint32) (blk uint32, off int) {
	return f.sb.ITableStart + ino/inodesPerBlk, int(ino%inodesPerBlk) * inodeSize
}

func (f *FS) readInode(ino uint32) (dinode, error) {
	blk, off := f.inodeLoc(ino)
	cb, err := f.block(blk)
	if err != nil {
		return dinode{}, err
	}
	return decodeInode(cb.data[off:]), nil
}

func (f *FS) writeInode(ino uint32, d *dinode) error {
	blk, off := f.inodeLoc(ino)
	cb, err := f.dirtyBlock(blk)
	if err != nil {
		return err
	}
	d.encode(cb.data[off : off+inodeSize])
	return nil
}

// Inode is a live inode handle. All handles for the same inode number
// share one object via the FS inode table.
type Inode struct {
	fs  *FS
	Ino uint32
	d   dinode
}

// Root returns the root directory inode.
func (f *FS) Root() (*Inode, error) { return f.inode(f.sb.RootIno) }

func (f *FS) inode(ino uint32) (*Inode, error) {
	if n, ok := f.inodes[ino]; ok {
		return n, nil
	}
	d, err := f.readInode(ino)
	if err != nil {
		return nil, err
	}
	n := &Inode{fs: f, Ino: ino, d: d}
	f.inodes[ino] = n
	return n, nil
}

func (n *Inode) save() error { return n.fs.writeInode(n.Ino, &n.d) }

func (n *Inode) now() uint64 {
	if n.fs.NowFn != nil {
		return n.fs.NowFn()
	}
	return 0
}

// FileInfo is the stat(2) view of an inode (storage-layer type).
type FileInfo = storage.FileInfo

// Stat returns the inode attributes.
func (n *Inode) Stat() FileInfo {
	return FileInfo{
		Ino: n.Ino, Mode: n.d.Mode, UID: n.d.UID, GID: n.d.GID,
		Nlink: n.d.Nlink, Size: int64(n.d.Size),
		Atime: n.d.Atime, Mtime: n.d.Mtime, Ctime: n.d.Ctime,
	}
}

// IsDir reports whether the inode is a directory.
func (n *Inode) IsDir() bool { return n.d.Mode&ModeTypeMask == ModeDir }

// IsSymlink reports whether the inode is a symbolic link.
func (n *Inode) IsSymlink() bool { return n.d.Mode&ModeTypeMask == ModeSymlink }

// Chmod updates permission bits.
func (n *Inode) Chmod(perm uint32) error {
	n.d.Mode = n.d.Mode&ModeTypeMask | perm&ModePermMask
	n.d.Ctime = n.now()
	return n.save()
}

// Chown updates ownership. Quota usage moves with the owner.
func (n *Inode) Chown(uid, gid uint32) error {
	if n.fs.quotaOn && uid != n.d.UID {
		blocks := int64((n.d.Size + BlockSize - 1) / BlockSize)
		n.fs.quotaCharge(n.d.UID, -blocks, -1)
		n.fs.quotaCharge(uid, blocks, 1)
	}
	n.d.UID, n.d.GID = uid, gid
	n.d.Ctime = n.now()
	return n.save()
}

// SetTimes updates atime/mtime explicitly (utimensat).
func (n *Inode) SetTimes(atime, mtime uint64) error {
	n.d.Atime, n.d.Mtime = atime, mtime
	return n.save()
}

// --- block mapping ----------------------------------------------------

// ptrAt reads the idx-th u32 out of a pointer block via the cache.
func (f *FS) ptrAt(blk uint32, idx int) (uint32, error) {
	cb, err := f.block(blk)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(cb.data[idx*4:]), nil
}

func (f *FS) setPtrAt(blk uint32, idx int, v uint32) error {
	cb, err := f.dirtyBlock(blk)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(cb.data[idx*4:], v)
	return nil
}

// blockFor maps a file block index to a device block, optionally
// allocating. A return of 0 with nil error means a hole.
func (n *Inode) blockFor(fileBlk int64, alloc, meta bool) (uint32, error) {
	return n.blockForEx(fileBlk, alloc, meta, false)
}

// blockForEx additionally lets the full-block write path skip the
// freshly-allocated-block zeroing (the block is about to be entirely
// overwritten, so no stale data can surface).
func (n *Inode) blockForEx(fileBlk int64, alloc, meta, skipZero bool) (uint32, error) {
	f := n.fs
	allocOne := func() (uint32, error) {
		b, err := f.allocBlock(n.d.UID)
		if err != nil {
			return 0, err
		}
		if meta {
			f.zeroMetaBlock(b)
		} else if !skipZero {
			// Zero data blocks on the device: nothing stale becomes
			// visible through later size extensions.
			if err := f.zeroDataBlock(b); err != nil {
				return 0, err
			}
		}
		return b, nil
	}
	allocPtrBlock := func() (uint32, error) {
		b, err := f.allocBlock(n.d.UID)
		if err != nil {
			return 0, err
		}
		f.zeroMetaBlock(b)
		return b, nil
	}

	switch {
	case fileBlk < 12:
		if n.d.Direct[fileBlk] == 0 && alloc {
			b, err := allocOne()
			if err != nil {
				return 0, err
			}
			n.d.Direct[fileBlk] = b
			if err := n.save(); err != nil {
				return 0, err
			}
		}
		return n.d.Direct[fileBlk], nil

	case fileBlk < 12+ptrsPerBlk:
		idx := int(fileBlk - 12)
		if n.d.Indirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := allocPtrBlock()
			if err != nil {
				return 0, err
			}
			n.d.Indirect = b
			if err := n.save(); err != nil {
				return 0, err
			}
		}
		p, err := f.ptrAt(n.d.Indirect, idx)
		if err != nil {
			return 0, err
		}
		if p == 0 && alloc {
			b, err := allocOne()
			if err != nil {
				return 0, err
			}
			if err := f.setPtrAt(n.d.Indirect, idx, b); err != nil {
				return 0, err
			}
			p = b
		}
		return p, nil

	case fileBlk < 12+ptrsPerBlk+int64(ptrsPerBlk)*int64(ptrsPerBlk):
		rel := fileBlk - 12 - ptrsPerBlk
		l1, l2 := int(rel/ptrsPerBlk), int(rel%ptrsPerBlk)
		if n.d.DIndirect == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := allocPtrBlock()
			if err != nil {
				return 0, err
			}
			n.d.DIndirect = b
			if err := n.save(); err != nil {
				return 0, err
			}
		}
		mid, err := f.ptrAt(n.d.DIndirect, l1)
		if err != nil {
			return 0, err
		}
		if mid == 0 {
			if !alloc {
				return 0, nil
			}
			b, err := allocPtrBlock()
			if err != nil {
				return 0, err
			}
			if err := f.setPtrAt(n.d.DIndirect, l1, b); err != nil {
				return 0, err
			}
			mid = b
		}
		p, err := f.ptrAt(mid, l2)
		if err != nil {
			return 0, err
		}
		if p == 0 && alloc {
			b, err := allocOne()
			if err != nil {
				return 0, err
			}
			if err := f.setPtrAt(mid, l2, b); err != nil {
				return 0, err
			}
			p = b
		}
		return p, nil
	}
	return 0, fmt.Errorf("simplefs: file block %d beyond maximum file size: %w", fileBlk, fserr.ErrNoSpace)
}

func (f *FS) zeroDataBlock(b uint32) error {
	zero := make([]byte, BlockSize)
	return f.dev.WriteAt(int64(b)*BlockSize, zero)
}

// zeroMetaBlock installs a fresh zeroed block in the metadata cache;
// it reaches the device at the next flush.
func (f *FS) zeroMetaBlock(b uint32) {
	f.cache[b] = &cblock{data: make([]byte, BlockSize), dirty: true}
}

// --- file data --------------------------------------------------------

// ReadAt fills buf from the file at off; reads past EOF are truncated
// and the valid byte count returned.
func (n *Inode) ReadAt(buf []byte, off int64) (int, error) {
	if n.IsDir() {
		return 0, fserr.ErrIsDir
	}
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	size := int64(n.d.Size)
	if off >= size {
		return 0, nil
	}
	if off+int64(len(buf)) > size {
		buf = buf[:size-off]
	}
	total := 0
	for len(buf) > 0 {
		fb := off / BlockSize
		bo := int(off % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(buf) {
			chunk = len(buf)
		}
		blk, err := n.blockFor(fb, false, false)
		if err != nil {
			return total, err
		}
		switch {
		case blk == 0:
			for i := 0; i < chunk; i++ {
				buf[i] = 0
			}
		case bo == 0 && chunk == BlockSize:
			// Cluster physically-contiguous full blocks into one
			// device command (bio merging).
			run, err := n.contigRun(fb, blk, len(buf)/BlockSize)
			if err != nil {
				return total, err
			}
			nb := run * BlockSize
			if err := n.fs.dev.ReadAt(int64(blk)*BlockSize, buf[:nb]); err != nil {
				return total, err
			}
			chunk = nb
		default:
			tmp := make([]byte, BlockSize)
			if err := n.fs.dev.ReadAt(int64(blk)*BlockSize, tmp); err != nil {
				return total, err
			}
			copy(buf[:chunk], tmp[bo:])
		}
		buf = buf[chunk:]
		off += int64(chunk)
		total += chunk
	}
	n.d.Atime = n.now()
	return total, nil
}

// contigRun returns how many file blocks starting at (fb, blk) map to
// physically consecutive device blocks, up to max (and a 1 MiB cap).
func (n *Inode) contigRun(fb int64, blk uint32, max int) (int, error) {
	if max > 256 {
		max = 256
	}
	run := 1
	for run < max {
		next, err := n.blockFor(fb+int64(run), false, false)
		if err != nil {
			return 0, err
		}
		if next != blk+uint32(run) {
			break
		}
		run++
	}
	return run, nil
}

// contigRunAlloc is the allocating variant used by the full-block
// write path: allocated blocks skip zeroing because the caller
// overwrites the entire run.
func (n *Inode) contigRunAlloc(fb int64, blk uint32, max int) (int, error) {
	if max > 256 {
		max = 256
	}
	run := 1
	for run < max {
		next, err := n.blockForEx(fb+int64(run), true, false, true)
		if err != nil {
			return 0, err
		}
		if next != blk+uint32(run) {
			break
		}
		run++
	}
	return run, nil
}

// WriteAt stores buf at off, extending the file as needed.
func (n *Inode) WriteAt(buf []byte, off int64) (int, error) {
	if n.IsDir() {
		return 0, fserr.ErrIsDir
	}
	if off < 0 {
		return 0, fserr.ErrInvalid
	}
	total := 0
	for len(buf) > 0 {
		fb := off / BlockSize
		bo := int(off % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if bo == 0 && chunk == BlockSize {
			// Full-block path: allocate without zeroing (the write
			// covers everything) and cluster contiguous physical
			// blocks into one device command.
			blk, err := n.blockForEx(fb, true, false, true)
			if err != nil {
				return total, err
			}
			run, err := n.contigRunAlloc(fb, blk, len(buf)/BlockSize)
			if err != nil {
				return total, err
			}
			nb := run * BlockSize
			if err := n.fs.dev.WriteAt(int64(blk)*BlockSize, buf[:nb]); err != nil {
				return total, err
			}
			chunk = nb
		} else {
			blk, err := n.blockFor(fb, true, false)
			if err != nil {
				return total, err
			}
			tmp := make([]byte, BlockSize)
			if err := n.fs.dev.ReadAt(int64(blk)*BlockSize, tmp); err != nil {
				return total, err
			}
			copy(tmp[bo:], buf[:chunk])
			if err := n.fs.dev.WriteAt(int64(blk)*BlockSize, tmp); err != nil {
				return total, err
			}
		}
		buf = buf[chunk:]
		off += int64(chunk)
		total += chunk
	}
	if uint64(off) > n.d.Size {
		n.d.Size = uint64(off)
	}
	n.d.Mtime = n.now()
	return total, n.save()
}

// Truncate sets the file size, freeing blocks past the new end.
func (n *Inode) Truncate(size int64) error {
	if n.IsDir() {
		return fserr.ErrIsDir
	}
	if size < 0 {
		return fserr.ErrInvalid
	}
	old := int64(n.d.Size)
	if size < old {
		firstFree := (size + BlockSize - 1) / BlockSize
		lastUsed := (old + BlockSize - 1) / BlockSize
		for fb := firstFree; fb < lastUsed; fb++ {
			blk, err := n.blockFor(fb, false, false)
			if err != nil {
				return err
			}
			if blk != 0 {
				if err := n.fs.freeBlock(blk, n.d.UID); err != nil {
					return err
				}
				if err := n.clearPointer(fb); err != nil {
					return err
				}
			}
		}
		// Zero the tail of the now-partial last block.
		if size%BlockSize != 0 {
			blk, err := n.blockFor(size/BlockSize, false, false)
			if err != nil {
				return err
			}
			if blk != 0 {
				tmp := make([]byte, BlockSize)
				if err := n.fs.dev.ReadAt(int64(blk)*BlockSize, tmp); err != nil {
					return err
				}
				for i := size % BlockSize; i < BlockSize; i++ {
					tmp[i] = 0
				}
				if err := n.fs.dev.WriteAt(int64(blk)*BlockSize, tmp); err != nil {
					return err
				}
			}
		}
	}
	n.d.Size = uint64(size)
	n.d.Mtime = n.now()
	n.d.Ctime = n.d.Mtime
	return n.save()
}

// clearPointer zeroes the mapping slot for fileBlk (indirect blocks
// are left allocated; they are reclaimed when the inode is freed).
func (n *Inode) clearPointer(fileBlk int64) error {
	switch {
	case fileBlk < 12:
		n.d.Direct[fileBlk] = 0
		return n.save()
	case fileBlk < 12+ptrsPerBlk:
		if n.d.Indirect == 0 {
			return nil
		}
		return n.fs.setPtrAt(n.d.Indirect, int(fileBlk-12), 0)
	default:
		rel := fileBlk - 12 - ptrsPerBlk
		if n.d.DIndirect == 0 {
			return nil
		}
		mid, err := n.fs.ptrAt(n.d.DIndirect, int(rel/ptrsPerBlk))
		if err != nil || mid == 0 {
			return err
		}
		return n.fs.setPtrAt(mid, int(rel%ptrsPerBlk), 0)
	}
}

// freeAllBlocks releases every data and pointer block (unlink path).
func (n *Inode) freeAllBlocks() error {
	blocks := int64((n.d.Size + BlockSize - 1) / BlockSize)
	for fb := int64(0); fb < blocks; fb++ {
		blk, err := n.blockFor(fb, false, false)
		if err != nil {
			return err
		}
		if blk != 0 {
			if err := n.fs.freeBlock(blk, n.d.UID); err != nil {
				return err
			}
		}
	}
	if n.d.Indirect != 0 {
		if err := n.fs.freeBlock(n.d.Indirect, n.d.UID); err != nil {
			return err
		}
	}
	if n.d.DIndirect != 0 {
		for i := 0; i < ptrsPerBlk; i++ {
			mid, err := n.fs.ptrAt(n.d.DIndirect, i)
			if err != nil {
				return err
			}
			if mid != 0 {
				if err := n.fs.freeBlock(mid, n.d.UID); err != nil {
					return err
				}
			}
		}
		if err := n.fs.freeBlock(n.d.DIndirect, n.d.UID); err != nil {
			return err
		}
	}
	n.d.Size = 0
	n.d.Direct = [12]uint32{}
	n.d.Indirect, n.d.DIndirect = 0, 0
	return n.save()
}
