package simplefs

import (
	"encoding/binary"

	"vmsh/internal/fserr"
	"vmsh/internal/storage"
)

// Directory entries are fixed 256-byte slots: ino u32, type u8,
// namelen u8, pad u16, name bytes. ino == 0 marks a free slot.
const (
	dirEntSize   = 256
	dirEntsPerBl = BlockSize / dirEntSize
	maxName      = dirEntSize - 8
)

// DirEntry is one directory listing row (storage-layer type).
type DirEntry = storage.DirEntry

// dirBlocks returns how many blocks the directory currently spans.
func (n *Inode) dirBlocks() int64 {
	return int64((n.d.Size + BlockSize - 1) / BlockSize)
}

// dirScan walks every slot; visit returns true to stop. Directory
// blocks always go through the metadata cache.
func (n *Inode) dirScan(visit func(blk uint32, slot int, ino uint32, typ uint8, name string) bool) error {
	for fb := int64(0); fb < n.dirBlocks(); fb++ {
		blk, err := n.blockFor(fb, false, true)
		if err != nil {
			return err
		}
		if blk == 0 {
			continue
		}
		cb, err := n.fs.block(blk)
		if err != nil {
			return err
		}
		for s := 0; s < dirEntsPerBl; s++ {
			e := cb.data[s*dirEntSize:]
			ino := binary.LittleEndian.Uint32(e)
			var name string
			var typ uint8
			if ino != 0 {
				typ = e[4]
				nl := int(e[5])
				name = string(e[8 : 8+nl])
			}
			if visit(blk, s, ino, typ, name) {
				return nil
			}
		}
	}
	return nil
}

func typeCode(mode uint32) uint8 {
	switch mode & ModeTypeMask {
	case ModeDir:
		return 1
	case ModeSymlink:
		return 2
	default:
		return 0
	}
}

func typeMode(code uint8) uint32 {
	switch code {
	case 1:
		return ModeDir
	case 2:
		return ModeSymlink
	default:
		return ModeFile
	}
}

// Lookup resolves name to a child inode.
func (n *Inode) Lookup(name string) (*Inode, error) {
	if !n.IsDir() {
		return nil, fserr.ErrNotDir
	}
	var found uint32
	err := n.dirScan(func(_ uint32, _ int, ino uint32, _ uint8, ename string) bool {
		if ino != 0 && ename == name {
			found = ino
			return true
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	if found == 0 {
		return nil, fserr.ErrNotFound
	}
	return n.fs.inode(found)
}

// addEntry installs (name -> ino), extending the directory if needed.
func (n *Inode) addEntry(name string, ino uint32, typ uint8) error {
	if len(name) == 0 || len(name) > maxName {
		return fserr.ErrNameTooLong
	}
	var freeBlk uint32
	freeSlot := -1
	err := n.dirScan(func(blk uint32, slot int, eino uint32, _ uint8, ename string) bool {
		if eino == 0 && freeSlot < 0 {
			freeBlk, freeSlot = blk, slot
		}
		return false
	})
	if err != nil {
		return err
	}
	if freeSlot < 0 {
		// Extend the directory by one block.
		fb := n.dirBlocks()
		blk, err := n.blockFor(fb, true, true)
		if err != nil {
			return err
		}
		n.d.Size = uint64(fb+1) * BlockSize
		if err := n.save(); err != nil {
			return err
		}
		freeBlk, freeSlot = blk, 0
	}
	cb, err := n.fs.dirtyBlock(freeBlk)
	if err != nil {
		return err
	}
	e := cb.data[freeSlot*dirEntSize:]
	binary.LittleEndian.PutUint32(e, ino)
	e[4] = typ
	e[5] = byte(len(name))
	copy(e[8:], name)
	n.d.Mtime = n.now()
	return n.save()
}

// removeEntry deletes the slot for name, returning the child ino.
func (n *Inode) removeEntry(name string) (uint32, error) {
	var gone uint32
	var tblk uint32
	tslot := -1
	err := n.dirScan(func(blk uint32, slot int, ino uint32, _ uint8, ename string) bool {
		if ino != 0 && ename == name {
			gone, tblk, tslot = ino, blk, slot
			return true
		}
		return false
	})
	if err != nil {
		return 0, err
	}
	if tslot < 0 {
		return 0, fserr.ErrNotFound
	}
	cb, err := n.fs.dirtyBlock(tblk)
	if err != nil {
		return 0, err
	}
	for i := 0; i < dirEntSize; i++ {
		cb.data[tslot*dirEntSize+i] = 0
	}
	n.d.Mtime = n.now()
	return gone, n.save()
}

// ReadDir lists the directory.
func (n *Inode) ReadDir() ([]DirEntry, error) {
	if !n.IsDir() {
		return nil, fserr.ErrNotDir
	}
	var out []DirEntry
	err := n.dirScan(func(_ uint32, _ int, ino uint32, typ uint8, name string) bool {
		if ino != 0 {
			out = append(out, DirEntry{Ino: ino, Type: typeMode(typ), Name: name})
		}
		return false
	})
	return out, err
}

// isEmptyDir reports whether the directory holds no entries.
func (n *Inode) isEmptyDir() (bool, error) {
	empty := true
	err := n.dirScan(func(_ uint32, _ int, ino uint32, _ uint8, _ string) bool {
		if ino != 0 {
			empty = false
			return true
		}
		return false
	})
	return empty, err
}

// Create makes a regular file in the directory.
func (n *Inode) Create(name string, perm, uid, gid uint32) (*Inode, error) {
	return n.newChild(name, ModeFile|perm&ModePermMask, uid, gid)
}

// Mkdir makes a subdirectory.
func (n *Inode) Mkdir(name string, perm, uid, gid uint32) (*Inode, error) {
	child, err := n.newChild(name, ModeDir|perm&ModePermMask, uid, gid)
	if err != nil {
		return nil, err
	}
	child.d.Nlink = 2
	n.d.Nlink++
	if err := child.save(); err != nil {
		return nil, err
	}
	return child, n.save()
}

// Symlink creates a symbolic link holding target.
func (n *Inode) Symlink(name, target string, uid, gid uint32) (*Inode, error) {
	child, err := n.newChild(name, ModeSymlink|0o777, uid, gid)
	if err != nil {
		return nil, err
	}
	if _, err := child.writeSymlink(target); err != nil {
		return nil, err
	}
	return child, nil
}

func (n *Inode) writeSymlink(target string) (int, error) {
	// Bypass the IsDir check wrapper via direct data write.
	return n.WriteAt([]byte(target), 0)
}

// Readlink returns the symlink target.
func (n *Inode) Readlink() (string, error) {
	if !n.IsSymlink() {
		return "", fserr.ErrInvalid
	}
	buf := make([]byte, n.d.Size)
	if _, err := n.ReadAt(buf, 0); err != nil {
		return "", err
	}
	return string(buf), nil
}

func (n *Inode) newChild(name string, mode, uid, gid uint32) (*Inode, error) {
	if !n.IsDir() {
		return nil, fserr.ErrNotDir
	}
	if _, err := n.Lookup(name); err == nil {
		return nil, fserr.ErrExists
	} else if err != fserr.ErrNotFound {
		return nil, err
	}
	ino, err := n.fs.allocInode(uid)
	if err != nil {
		return nil, err
	}
	now := n.now()
	d := dinode{Mode: mode, UID: uid, GID: gid, Nlink: 1, Atime: now, Mtime: now, Ctime: now}
	if err := n.fs.writeInode(ino, &d); err != nil {
		return nil, err
	}
	if err := n.addEntry(name, ino, typeCode(mode)); err != nil {
		return nil, err
	}
	child := &Inode{fs: n.fs, Ino: ino, d: d}
	n.fs.inodes[ino] = child
	return child, nil
}

// Link adds a hard link to target under name.
func (n *Inode) Link(target *Inode, name string) error {
	if !n.IsDir() {
		return fserr.ErrNotDir
	}
	if target.IsDir() {
		return fserr.ErrPerm // hard links to directories are forbidden
	}
	if _, err := n.Lookup(name); err == nil {
		return fserr.ErrExists
	}
	if err := n.addEntry(name, target.Ino, typeCode(target.d.Mode)); err != nil {
		return err
	}
	target.d.Nlink++
	target.d.Ctime = n.now()
	return target.save()
}

// Unlink removes name (a non-directory) from the directory, freeing
// the inode when the last link drops.
func (n *Inode) Unlink(name string) error {
	child, err := n.Lookup(name)
	if err != nil {
		return err
	}
	if child.IsDir() {
		return fserr.ErrIsDir
	}
	if _, err := n.removeEntry(name); err != nil {
		return err
	}
	child.d.Nlink--
	child.d.Ctime = n.now()
	if child.d.Nlink == 0 {
		if err := child.freeAllBlocks(); err != nil {
			return err
		}
		return n.fs.freeInode(child.Ino, child.d.UID)
	}
	return child.save()
}

// Rmdir removes an empty subdirectory.
func (n *Inode) Rmdir(name string) error {
	child, err := n.Lookup(name)
	if err != nil {
		return err
	}
	if !child.IsDir() {
		return fserr.ErrNotDir
	}
	empty, err := child.isEmptyDir()
	if err != nil {
		return err
	}
	if !empty {
		return fserr.ErrNotEmpty
	}
	if _, err := n.removeEntry(name); err != nil {
		return err
	}
	if err := child.freeAllBlocks(); err != nil {
		return err
	}
	n.d.Nlink--
	if err := n.save(); err != nil {
		return err
	}
	return n.fs.freeInode(child.Ino, child.d.UID)
}

// Rename moves oldName in n to newName in dstDir (same filesystem),
// with POSIX replace semantics.
func (n *Inode) Rename(oldName string, dstDir *Inode, newName string) error {
	if n.fs != dstDir.fs {
		return fserr.ErrXDev
	}
	src, err := n.Lookup(oldName)
	if err != nil {
		return err
	}
	if existing, err := dstDir.Lookup(newName); err == nil {
		if existing.Ino == src.Ino {
			return nil // rename onto the same inode is a no-op
		}
		if existing.IsDir() {
			if !src.IsDir() {
				return fserr.ErrIsDir
			}
			empty, err := existing.isEmptyDir()
			if err != nil {
				return err
			}
			if !empty {
				return fserr.ErrNotEmpty
			}
			if err := dstDir.Rmdir(newName); err != nil {
				return err
			}
		} else {
			if src.IsDir() {
				return fserr.ErrNotDir
			}
			if err := dstDir.Unlink(newName); err != nil {
				return err
			}
		}
	} else if err != fserr.ErrNotFound {
		return err
	}
	if _, err := n.removeEntry(oldName); err != nil {
		return err
	}
	if err := dstDir.addEntry(newName, src.Ino, typeCode(src.d.Mode)); err != nil {
		return err
	}
	if src.IsDir() && n.Ino != dstDir.Ino {
		n.d.Nlink--
		dstDir.d.Nlink++
		if err := n.save(); err != nil {
			return err
		}
		if err := dstDir.save(); err != nil {
			return err
		}
	}
	return nil
}
