// Package simplefs is a small but real on-disk filesystem: superblock,
// block and inode bitmaps, fixed inode table, directories as entry
// streams in data blocks, 12 direct + single + double indirect block
// pointers, and a per-uid quota table persisted with forced-unit-access
// (FUA) writes.
//
// It plays the role XFS plays in the paper's evaluation: the
// filesystem whose behaviour must be identical whether it runs over
// the native device, qemu-blk or vmsh-blk. Because the virtio paths do
// not negotiate FUA, quota persistence is disabled there and the three
// quota-reporting tests of the xfstests corpus fail on both virtual
// devices — reproducing §6.1's failure structure.
package simplefs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vmsh/internal/blockdev"
	"vmsh/internal/fserr"
	"vmsh/internal/storage"
)

// BlockSize is the filesystem block size.
const BlockSize = 4096

const (
	magic        = 0x53465331 // "SFS1"
	inodeSize    = 128
	inodesPerBlk = BlockSize / inodeSize
	ptrsPerBlk   = BlockSize / 4
	// MaxNameLen bounds directory entry names.
	MaxNameLen = 255
)

// File type bits stored in the mode's high nibble. The canonical
// definitions live in internal/storage; simplefs re-exports them so
// on-disk layout code and interface-level code agree by construction.
const (
	ModeTypeMask = storage.ModeTypeMask
	ModeDir      = storage.ModeDir
	ModeFile     = storage.ModeFile
	ModeSymlink  = storage.ModeSymlink
	ModePermMask = storage.ModePermMask
)

// superblock is the on-disk block 0 layout.
type superblock struct {
	Magic        uint32
	BlockCount   uint32
	InodeCount   uint32
	BlockBmStart uint32
	BlockBmBlks  uint32
	InodeBmStart uint32
	InodeBmBlks  uint32
	ITableStart  uint32
	ITableBlks   uint32
	QuotaStart   uint32
	QuotaBlks    uint32
	DataStart    uint32
	RootIno      uint32
	FreeBlocks   uint32
	FreeInodes   uint32
}

const sbEncodedLen = 15 * 4

func (s *superblock) encode() []byte {
	b := make([]byte, BlockSize)
	vals := []uint32{s.Magic, s.BlockCount, s.InodeCount, s.BlockBmStart, s.BlockBmBlks,
		s.InodeBmStart, s.InodeBmBlks, s.ITableStart, s.ITableBlks, s.QuotaStart,
		s.QuotaBlks, s.DataStart, s.RootIno, s.FreeBlocks, s.FreeInodes}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	return b
}

func decodeSuper(b []byte) superblock {
	g := func(i int) uint32 { return binary.LittleEndian.Uint32(b[i*4:]) }
	return superblock{
		Magic: g(0), BlockCount: g(1), InodeCount: g(2), BlockBmStart: g(3), BlockBmBlks: g(4),
		InodeBmStart: g(5), InodeBmBlks: g(6), ITableStart: g(7), ITableBlks: g(8),
		QuotaStart: g(9), QuotaBlks: g(10), DataStart: g(11), RootIno: g(12),
		FreeBlocks: g(13), FreeInodes: g(14),
	}
}

// FS is a mounted filesystem instance.
type FS struct {
	dev blockdev.Device
	sb  superblock

	// NowFn supplies timestamps (the guest kernel's virtual clock,
	// in seconds); nil means timestamps stay zero.
	NowFn func() uint64

	cache map[uint32]*cblock // metadata block cache
	// quota state
	quotaOn  bool
	quota    map[uint32]*QuotaUsage
	inodes   map[uint32]*Inode // live inode objects by number
	readOnly bool

	// allocation cursors: next-fit hints so allocation does not
	// rescan the bitmap from the start every time.
	blockHint uint32
	inodeHint uint32
}

type cblock struct {
	data  []byte
	dirty bool
}

// QuotaUsage is the per-uid accounting record (the storage-layer
// type; aliased so existing callers keep compiling unchanged).
type QuotaUsage = storage.QuotaUsage

// MkfsOptions tunes filesystem geometry.
type MkfsOptions struct {
	Blocks int // total blocks; 0 derives from device size
	Inodes int // inode count; 0 picks blocks/4
}

// Mkfs formats the device.
func Mkfs(dev blockdev.Device, opts MkfsOptions) error {
	blocks := opts.Blocks
	if blocks == 0 {
		blocks = int(dev.Size() / BlockSize)
	}
	if blocks < 64 {
		return fmt.Errorf("simplefs: device too small (%d blocks): %w", blocks, fserr.ErrInvalid)
	}
	inodes := opts.Inodes
	if inodes == 0 {
		inodes = blocks / 4
	}
	if inodes < 16 {
		inodes = 16
	}

	bmBlks := (blocks + BlockSize*8 - 1) / (BlockSize * 8)
	ibmBlks := (inodes + BlockSize*8 - 1) / (BlockSize * 8)
	itBlks := (inodes + inodesPerBlk - 1) / inodesPerBlk
	quotaBlks := 4

	sb := superblock{
		Magic:      magic,
		BlockCount: uint32(blocks),
		InodeCount: uint32(inodes),
	}
	next := uint32(1)
	sb.BlockBmStart, next = next, next+uint32(bmBlks)
	sb.BlockBmBlks = uint32(bmBlks)
	sb.InodeBmStart, next = next, next+uint32(ibmBlks)
	sb.InodeBmBlks = uint32(ibmBlks)
	sb.ITableStart, next = next, next+uint32(itBlks)
	sb.ITableBlks = uint32(itBlks)
	sb.QuotaStart, next = next, next+uint32(quotaBlks)
	sb.QuotaBlks = uint32(quotaBlks)
	sb.DataStart = next
	if sb.DataStart >= sb.BlockCount {
		return fmt.Errorf("simplefs: metadata (%d blocks) exceeds device: %w", sb.DataStart, fserr.ErrNoSpace)
	}
	sb.FreeBlocks = sb.BlockCount - sb.DataStart
	sb.FreeInodes = uint32(inodes) - 1 // ino 0 reserved

	zero := make([]byte, BlockSize)
	for b := uint32(1); b < sb.DataStart; b++ {
		if err := dev.WriteAt(int64(b)*BlockSize, zero); err != nil {
			return err
		}
	}

	f := &FS{dev: dev, sb: sb, cache: make(map[uint32]*cblock),
		quota: make(map[uint32]*QuotaUsage), inodes: make(map[uint32]*Inode), quotaOn: true}

	// Root directory: ino 1.
	rootIno := uint32(1)
	if err := f.bitmapSet(sb.InodeBmStart, rootIno, true); err != nil {
		return err
	}
	root := &dinode{Mode: ModeDir | 0o755, Nlink: 2}
	if err := f.writeInode(rootIno, root); err != nil {
		return err
	}
	f.sb.RootIno = rootIno
	if err := dev.WriteAt(0, f.sb.encode()); err != nil {
		return err
	}
	if err := f.flushCache(); err != nil {
		return err
	}
	return dev.Flush()
}

// Mount opens a formatted device. Quota persistence requires FUA; on
// devices without it the quota subsystem is disabled and QuotaReport
// returns fserr.ErrNotSupported.
func Mount(dev blockdev.Device) (*FS, error) {
	b := make([]byte, BlockSize)
	if err := dev.ReadAt(0, b); err != nil {
		return nil, err
	}
	sb := decodeSuper(b)
	if sb.Magic != magic {
		return nil, fmt.Errorf("simplefs: bad magic %#x: %w", sb.Magic, fserr.ErrInvalid)
	}
	f := &FS{dev: dev, sb: sb, cache: make(map[uint32]*cblock),
		quota: make(map[uint32]*QuotaUsage), inodes: make(map[uint32]*Inode)}
	f.quotaOn = dev.SupportsFUA()
	if f.quotaOn {
		if err := f.loadQuota(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Device returns the underlying block device.
func (f *FS) Device() blockdev.Device { return f.dev }

// --- block cache -----------------------------------------------------

func (f *FS) block(n uint32) (*cblock, error) {
	if cb, ok := f.cache[n]; ok {
		return cb, nil
	}
	data := make([]byte, BlockSize)
	if err := f.dev.ReadAt(int64(n)*BlockSize, data); err != nil {
		return nil, err
	}
	cb := &cblock{data: data}
	f.cache[n] = cb
	return cb, nil
}

func (f *FS) dirtyBlock(n uint32) (*cblock, error) {
	cb, err := f.block(n)
	if err != nil {
		return nil, err
	}
	cb.dirty = true
	return cb, nil
}

func (f *FS) flushCache() error {
	ns := make([]uint32, 0, len(f.cache))
	for n, cb := range f.cache {
		if cb.dirty {
			ns = append(ns, n)
		}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	for _, n := range ns {
		cb := f.cache[n]
		if err := f.dev.WriteAt(int64(n)*BlockSize, cb.data); err != nil {
			return err
		}
		cb.dirty = false
	}
	return nil
}

// Sync writes back all dirty metadata and the superblock, then
// flushes the device.
func (f *FS) Sync() error {
	if err := f.dev.WriteAt(0, f.sb.encode()); err != nil {
		return err
	}
	if err := f.flushCache(); err != nil {
		return err
	}
	return f.dev.Flush()
}

// --- bitmaps ---------------------------------------------------------

func (f *FS) bitmapGet(start, idx uint32) (bool, error) {
	blk := start + idx/(BlockSize*8)
	cb, err := f.block(blk)
	if err != nil {
		return false, err
	}
	bit := idx % (BlockSize * 8)
	return cb.data[bit/8]&(1<<(bit%8)) != 0, nil
}

func (f *FS) bitmapSet(start, idx uint32, v bool) error {
	blk := start + idx/(BlockSize*8)
	cb, err := f.dirtyBlock(blk)
	if err != nil {
		return err
	}
	bit := idx % (BlockSize * 8)
	if v {
		cb.data[bit/8] |= 1 << (bit % 8)
	} else {
		cb.data[bit/8] &^= 1 << (bit % 8)
	}
	return nil
}

// allocBlock finds a free data block, next-fit from the last hit.
func (f *FS) allocBlock(uid uint32) (uint32, error) {
	if f.sb.FreeBlocks == 0 {
		return 0, fserr.ErrNoSpace
	}
	start := f.blockHint
	if start < f.sb.DataStart || start >= f.sb.BlockCount {
		start = f.sb.DataStart
	}
	span := f.sb.BlockCount - f.sb.DataStart
	for i := uint32(0); i < span; i++ {
		n := f.sb.DataStart + (start-f.sb.DataStart+i)%span
		used, err := f.bitmapGet(f.sb.BlockBmStart, n)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := f.bitmapSet(f.sb.BlockBmStart, n, true); err != nil {
				return 0, err
			}
			f.sb.FreeBlocks--
			f.blockHint = n + 1
			f.quotaCharge(uid, 1, 0)
			// Note: the block is not zeroed here. Metadata callers
			// zero it in the cache (zeroMetaBlock); data callers zero
			// it on the device (zeroDataBlock). Mixing the two would
			// let a stale cached zero page overwrite direct data IO
			// at the next cache flush.
			delete(f.cache, n)
			return n, nil
		}
	}
	return 0, fserr.ErrNoSpace
}

func (f *FS) freeBlock(n, uid uint32) error {
	if err := f.bitmapSet(f.sb.BlockBmStart, n, false); err != nil {
		return err
	}
	f.sb.FreeBlocks++
	f.quotaCharge(uid, -1, 0)
	delete(f.cache, n)
	return nil
}

func (f *FS) allocInode(uid uint32) (uint32, error) {
	if f.sb.FreeInodes == 0 {
		return 0, fserr.ErrNoSpace
	}
	start := f.inodeHint
	if start == 0 || start >= f.sb.InodeCount {
		start = 1
	}
	span := f.sb.InodeCount - 1
	for i := uint32(0); i < span; i++ {
		n := 1 + (start-1+i)%span
		used, err := f.bitmapGet(f.sb.InodeBmStart, n)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := f.bitmapSet(f.sb.InodeBmStart, n, true); err != nil {
				return 0, err
			}
			f.sb.FreeInodes--
			f.inodeHint = n + 1
			f.quotaCharge(uid, 0, 1)
			return n, nil
		}
	}
	return 0, fserr.ErrNoSpace
}

func (f *FS) freeInode(n, uid uint32) error {
	if err := f.bitmapSet(f.sb.InodeBmStart, n, false); err != nil {
		return err
	}
	f.sb.FreeInodes++
	f.quotaCharge(uid, 0, -1)
	delete(f.inodes, n)
	return nil
}

// --- quota -----------------------------------------------------------

// quotaCharge updates in-memory usage and persists the record with a
// FUA write when the device supports it.
func (f *FS) quotaCharge(uid uint32, blocks, inodes int64) {
	if !f.quotaOn {
		return
	}
	q := f.quota[uid]
	if q == nil {
		q = &QuotaUsage{UID: uid}
		f.quota[uid] = q
	}
	q.Blocks = uint64(int64(q.Blocks) + blocks)
	q.Inodes = uint64(int64(q.Inodes) + inodes)
	_ = f.persistQuota()
}

const quotaEntSize = 20 // uid u32 + blocks u64 + inodes u64

func (f *FS) persistQuota() error {
	uids := make([]uint32, 0, len(f.quota))
	for uid := range f.quota {
		uids = append(uids, uid)
	}
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
	maxEnts := int(f.sb.QuotaBlks) * BlockSize / quotaEntSize
	if len(uids) > maxEnts {
		uids = uids[:maxEnts]
	}
	buf := make([]byte, int(f.sb.QuotaBlks)*BlockSize)
	for i, uid := range uids {
		q := f.quota[uid]
		off := i * quotaEntSize
		binary.LittleEndian.PutUint32(buf[off:], uid+1) // +1: 0 marks end
		binary.LittleEndian.PutUint64(buf[off+4:], q.Blocks)
		binary.LittleEndian.PutUint64(buf[off+12:], q.Inodes)
	}
	// FUA semantics: write through, no volatile cache. The device
	// advertised FUA at mount, so a plain write+flush models it.
	if err := f.dev.WriteAt(int64(f.sb.QuotaStart)*BlockSize, buf); err != nil {
		return err
	}
	return nil
}

func (f *FS) loadQuota() error {
	buf := make([]byte, int(f.sb.QuotaBlks)*BlockSize)
	if err := f.dev.ReadAt(int64(f.sb.QuotaStart)*BlockSize, buf); err != nil {
		return err
	}
	for off := 0; off+quotaEntSize <= len(buf); off += quotaEntSize {
		uid := binary.LittleEndian.Uint32(buf[off:])
		if uid == 0 {
			break
		}
		f.quota[uid-1] = &QuotaUsage{
			UID:    uid - 1,
			Blocks: binary.LittleEndian.Uint64(buf[off+4:]),
			Inodes: binary.LittleEndian.Uint64(buf[off+12:]),
		}
	}
	return nil
}

// QuotaReport returns per-uid usage, sorted by uid. On devices without
// FUA the quota subsystem is offline and this fails — the mechanism
// behind the three xfstests failures on qemu-blk and vmsh-blk.
func (f *FS) QuotaReport() ([]QuotaUsage, error) {
	if !f.quotaOn {
		return nil, fmt.Errorf("quota disabled (device lacks FUA): %w", fserr.ErrNotSupported)
	}
	out := make([]QuotaUsage, 0, len(f.quota))
	for _, q := range f.quota {
		out = append(out, *q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UID < out[j].UID })
	return out, nil
}

// StatfsInfo is the statfs(2) summary (storage-layer type).
type StatfsInfo = storage.StatfsInfo

// Statfs returns filesystem usage.
func (f *FS) Statfs() StatfsInfo {
	return StatfsInfo{
		BlockSize:  BlockSize,
		Blocks:     uint64(f.sb.BlockCount - f.sb.DataStart),
		BlocksFree: uint64(f.sb.FreeBlocks),
		Inodes:     uint64(f.sb.InodeCount),
		InodesFree: uint64(f.sb.FreeInodes),
	}
}
