// Package netsim is a deterministic layer-2 packet switch connecting
// simulated VMs. It plays the role a host bridge/tap pair plays for
// real virtio-net: frames leave one VM's device, pay switching and
// link costs on the virtual clock, and arrive at another VM's device
// — synchronously, so two runs with the same seed interleave
// identically.
//
// The switch is a learning switch: source MACs are associated with
// their ingress port, unknown/broadcast destinations flood to every
// other port in port-ID order. Each port carries LinkParams modelling
// the attached link's serialisation bandwidth, propagation latency
// and a deterministic drop pattern; unset fields fall back to the
// host cost model (vclock.Costs.NetLinkBW / NetLinkLat).
package netsim

import (
	"fmt"
	"time"

	"vmsh/internal/faults"
	"vmsh/internal/obs"
	"vmsh/internal/vclock"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones destination address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String implements fmt.Stringer.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet framing constants.
const (
	// HeaderSize is destination MAC + source MAC + EtherType.
	HeaderSize = 14
	// EtherTypeVMSH is the experimental EtherType the guest netstack
	// speaks (IEEE 88B5, local experimental).
	EtherTypeVMSH = 0x88b5
	// DefaultMTU bounds the frame payload (classic Ethernet).
	DefaultMTU = 1500
)

// BuildFrame assembles dst|src|ethertype|payload.
func BuildFrame(dst, src MAC, etherType uint16, payload []byte) []byte {
	f := make([]byte, HeaderSize+len(payload))
	copy(f[0:6], dst[:])
	copy(f[6:12], src[:])
	f[12] = byte(etherType >> 8)
	f[13] = byte(etherType)
	copy(f[14:], payload)
	return f
}

// ParseFrame splits a frame into its header fields and payload. The
// payload aliases the input.
func ParseFrame(f []byte) (dst, src MAC, etherType uint16, payload []byte, err error) {
	if len(f) < HeaderSize {
		return dst, src, 0, nil, fmt.Errorf("netsim: runt frame (%d bytes)", len(f))
	}
	copy(dst[:], f[0:6])
	copy(src[:], f[6:12])
	etherType = uint16(f[12])<<8 | uint16(f[13])
	return dst, src, etherType, f[14:], nil
}

// LinkParams models the link attached to one switch port. Zero values
// fall back to the cost-model defaults.
type LinkParams struct {
	// BandwidthBps is the serialisation bandwidth in bytes/sec.
	BandwidthBps float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// DropNth, when > 0, deterministically drops every Nth frame
	// egressing this link (1st, N+1th, ... pass; the Nth drops).
	DropNth int
	// MTU bounds the frame payload; oversized frames are dropped at
	// ingress. Zero means DefaultMTU.
	MTU int
}

// PortStats counts one port's traffic. "Tx/Rx" are from the attached
// NIC's point of view: Tx enters the switch, Rx leaves it.
type PortStats struct {
	TxFrames, TxBytes int64
	RxFrames, RxBytes int64
	DropsLink         int64 // lost to the link's drop pattern
	DropsOversize     int64 // exceeded the link MTU
	DropsNoSink       int64 // delivered to a port with no receiver
}

// Port is one switch attachment point. The device side (virtio-net
// hosted by VMSH) calls Send for guest transmissions and receives
// inbound frames through Deliver.
type Port struct {
	sw   *Switch
	id   int
	link LinkParams
	name string

	// Deliver is invoked, synchronously, for every frame the switch
	// forwards to this port. A nil Deliver counts as DropsNoSink.
	Deliver func(frame []byte)

	egressSeq int64 // frames attempted out of this port (drop pattern)
	stats     PortStats
	track     obs.Track // "link:<name>" once Observe wires a tracer
}

// ID returns the port's switch-assigned index (0, 1, ...).
func (p *Port) ID() int { return p.id }

// Name returns the diagnostic name given at attach time.
func (p *Port) Name() string { return p.name }

// Link returns the port's link parameters.
func (p *Port) Link() LinkParams { return p.link }

// Stats snapshots the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// MAC returns the deterministic hardware address assigned to the
// device behind this port: the VMSH OUI 52:56:4d ("RVM") followed by
// the port ID.
func (p *Port) MAC() MAC {
	return MAC{0x52, 0x56, 0x4d, 0x00, 0x00, byte(p.id + 1)}
}

// SwitchStats aggregates switch-level behaviour.
type SwitchStats struct {
	Forwarded int64 // frames unicast to a learned port
	Flooded   int64 // frames flooded (broadcast/unknown destination)
	Dropped   int64 // frames lost anywhere (link, MTU, no sink)
}

// Switch is the deterministic learning switch. It is not safe for
// concurrent use — the simulation is single-threaded by design, which
// is precisely what makes two same-seed runs byte-identical.
type Switch struct {
	clock *vclock.Clock
	costs *vclock.Costs

	ports []*Port
	fdb   map[MAC]*Port // forwarding database: learned source MACs

	stats SwitchStats

	faults *faults.Injector
	taps   *faults.Taps

	trace        *obs.Tracer
	ctrForwarded *obs.Counter
	ctrFlooded   *obs.Counter
	ctrDropped   *obs.Counter
}

// New builds an empty switch charging the given clock. The cost model
// must be valid (Validate) — a zero link bandwidth would turn every
// throughput figure into a division by zero.
func New(clock *vclock.Clock, costs *vclock.Costs) *Switch {
	if clock == nil || costs == nil {
		panic("netsim: switch needs a clock and a cost model")
	}
	costs.MustValidate()
	return &Switch{clock: clock, costs: costs, fdb: make(map[MAC]*Port)}
}

// Stats snapshots the switch counters.
func (s *Switch) Stats() SwitchStats { return s.stats }

// Ports returns the attachment list in port-ID order.
func (s *Switch) Ports() []*Port { return append([]*Port(nil), s.ports...) }

// Observe wires the switch into a tracer and metrics registry: every
// port gets a "link:<name>" track carrying per-frame transit spans,
// and the switch-level counters mirror into the registry. Ports
// attached after Observe are wired as they are created. Either
// argument may be nil.
func (s *Switch) Observe(t *obs.Tracer, reg *obs.Registry) {
	s.trace = t
	s.ctrForwarded = reg.Counter("net.switch.forwarded")
	s.ctrFlooded = reg.Counter("net.switch.flooded")
	s.ctrDropped = reg.Counter("net.switch.dropped")
	for _, p := range s.ports {
		p.track = t.Track("link:" + p.name)
	}
}

// SetFaults wires the host's fault-injection plane into the switch:
// each link delivery becomes a "net:link" crossing an injected fault
// turns into a link drop (counted like a DropNth loss). A nil injector
// (or never calling SetFaults) keeps the data path check-free.
func (s *Switch) SetFaults(in *faults.Injector) { s.faults = in }

// SetTaps wires the host's crossing-observation hub into the switch:
// every egress link delivery (or drop) becomes a "net:link" crossing
// in recorded sessions. Nil (or never calling SetTaps) keeps the data
// path observation-free.
func (s *Switch) SetTaps(t *faults.Taps) { s.taps = t }

// tapLink reports one link crossing; err is nil for a delivery,
// faults.Dropped (or the injected fault) for a loss.
func (s *Switch) tapLink(out *Port, frame []byte, err error) {
	if !s.taps.Active() {
		return
	}
	s.taps.Crossing(faults.OpNetLink,
		faults.NewDigest().U64(uint64(out.id)).U64(uint64(len(frame))),
		faults.NewDigest().Bytes(frame), err)
}

// NewPort attaches a new device to the switch.
func (s *Switch) NewPort(name string, link LinkParams) *Port {
	p := &Port{sw: s, id: len(s.ports), link: link, name: name}
	if s.trace != nil {
		p.track = s.trace.Track("link:" + name)
	}
	s.ports = append(s.ports, p)
	return p
}

// mtu returns the port's effective payload MTU.
func (p *Port) mtu() int {
	if p.link.MTU > 0 {
		return p.link.MTU
	}
	return DefaultMTU
}

// LinkTime computes one transfer's serialisation + propagation cost on
// a link, with zero-valued LinkParams falling back to the cost model —
// the same arithmetic the switch charges per frame. The lifecycle
// migration engine uses it to price bulk page streams over a modelled
// migration link without routing every page through frame switching.
func LinkTime(link LinkParams, costs *vclock.Costs, n int) time.Duration {
	bw := link.BandwidthBps
	if bw <= 0 {
		bw = costs.NetLinkBW
	}
	lat := link.Latency
	if lat <= 0 {
		lat = costs.NetLinkLat
	}
	return lat + vclock.Copy(n, bw)
}

// linkTime charges one frame's serialisation + propagation on p's link.
func (s *Switch) linkTime(p *Port, n int) time.Duration {
	return LinkTime(p.link, s.costs, n)
}

// Send ingests one frame from the device attached to p and forwards
// it. The whole path — ingress link, switching, egress link(s),
// destination Deliver callback(s) — runs synchronously on the
// caller's stack, charging the virtual clock as it goes.
func (s *Switch) Send(p *Port, frame []byte) {
	dst, src, _, payload, err := ParseFrame(frame)
	if err != nil {
		s.stats.Dropped++
		return
	}
	if len(payload) > p.mtu() {
		p.stats.DropsOversize++
		s.stats.Dropped++
		s.ctrDropped.Inc()
		return
	}
	p.stats.TxFrames++
	p.stats.TxBytes += int64(len(frame))

	// Ingress: the sender's link serialises the frame, then the
	// switch does its lookup.
	sp := p.track.Span("link", "ingress")
	s.clock.Advance(s.linkTime(p, len(frame)) + s.costs.NetSwitchHop)
	sp.End1("bytes", int64(len(frame)))
	p.track.FlowStep("flow", "ingress")
	s.fdb[src] = p

	if dst == Broadcast {
		s.stats.Flooded++
		s.ctrFlooded.Inc()
		for _, out := range s.ports {
			if out != p {
				s.egress(out, frame)
			}
		}
		return
	}
	if out, ok := s.fdb[dst]; ok && out != p {
		s.stats.Forwarded++
		s.ctrForwarded.Inc()
		s.egress(out, frame)
		return
	}
	// Unknown unicast: flood, like a real learning switch.
	s.stats.Flooded++
	s.ctrFlooded.Inc()
	for _, out := range s.ports {
		if out != p {
			s.egress(out, frame)
		}
	}
}

// egress pushes one frame out of a port, applying the link's drop
// pattern and charging the egress link.
func (s *Switch) egress(out *Port, frame []byte) {
	out.egressSeq++
	if n := out.link.DropNth; n > 0 && out.egressSeq%int64(n) == 0 {
		out.stats.DropsLink++
		s.stats.Dropped++
		s.ctrDropped.Inc()
		out.track.Event1("link", "drop", "bytes", int64(len(frame)))
		out.track.FlowEnd("flow", "drop")
		s.tapLink(out, frame, faults.Dropped)
		return
	}
	if err := s.faults.Check(faults.OpNetLink); err != nil {
		// An injected link fault is indistinguishable from a lossy
		// cable: the frame vanishes, the switch keeps forwarding.
		out.stats.DropsLink++
		s.stats.Dropped++
		s.ctrDropped.Inc()
		out.track.Event1("link", "drop", "bytes", int64(len(frame)))
		out.track.FlowEnd("flow", "drop")
		s.tapLink(out, frame, err)
		return
	}
	sp := out.track.Span("link", "transit")
	s.clock.Advance(s.linkTime(out, len(frame)))
	sp.End1("bytes", int64(len(frame)))
	out.track.FlowStep("flow", "transit")
	if out.Deliver == nil {
		out.stats.DropsNoSink++
		s.stats.Dropped++
		s.ctrDropped.Inc()
		out.track.FlowEnd("flow", "drop")
		s.tapLink(out, frame, faults.Dropped)
		return
	}
	out.stats.RxFrames++
	out.stats.RxBytes += int64(len(frame))
	// Observed before Deliver so crossings the receiving device makes
	// while processing the frame follow their cause in the log.
	s.tapLink(out, frame, nil)
	out.Deliver(frame)
}
