package netsim

import (
	"bytes"
	"testing"
	"time"

	"vmsh/internal/vclock"
)

func newSwitch() *Switch {
	return New(vclock.New(), vclock.Default())
}

func TestFrameRoundTrip(t *testing.T) {
	src := MAC{0x52, 0x56, 0x4d, 0, 0, 1}
	dst := MAC{0x52, 0x56, 0x4d, 0, 0, 2}
	payload := []byte("hello over the wire")
	f := BuildFrame(dst, src, EtherTypeVMSH, payload)
	if len(f) != HeaderSize+len(payload) {
		t.Fatalf("frame length %d, want %d", len(f), HeaderSize+len(payload))
	}
	d, s, et, p, err := ParseFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if d != dst || s != src || et != EtherTypeVMSH || !bytes.Equal(p, payload) {
		t.Fatalf("round trip mismatch: %v %v %04x %q", d, s, et, p)
	}
	if _, _, _, _, err := ParseFrame(f[:10]); err == nil {
		t.Fatal("runt frame parsed without error")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x52, 0x56, 0x4d, 0x00, 0x00, 0x01}
	if got := m.String(); got != "52:56:4d:00:00:01" {
		t.Fatalf("MAC string %q", got)
	}
}

// TestLearningAndFlooding checks the FDB behaviour: the first unicast
// to an unknown MAC floods, replies teach the switch, and subsequent
// traffic is unicast.
func TestLearningAndFlooding(t *testing.T) {
	sw := newSwitch()
	var got [3][][]byte
	ports := make([]*Port, 3)
	for i := range ports {
		i := i
		ports[i] = sw.NewPort("vm", LinkParams{})
		ports[i].Deliver = func(f []byte) { got[i] = append(got[i], append([]byte(nil), f...)) }
	}

	a, b := ports[0].MAC(), ports[1].MAC()

	// a -> b while b is unknown: flood to ports 1 and 2.
	sw.Send(ports[0], BuildFrame(b, a, EtherTypeVMSH, []byte("x")))
	if len(got[1]) != 1 || len(got[2]) != 1 || len(got[0]) != 0 {
		t.Fatalf("unknown unicast should flood: %d %d %d", len(got[0]), len(got[1]), len(got[2]))
	}
	if sw.Stats().Flooded != 1 {
		t.Fatalf("flooded = %d, want 1", sw.Stats().Flooded)
	}

	// b -> a: a was learned from the first frame, unicast to port 0 only.
	sw.Send(ports[1], BuildFrame(a, b, EtherTypeVMSH, []byte("y")))
	if len(got[0]) != 1 || len(got[2]) != 1 {
		t.Fatalf("reply should unicast to port 0 only: %d %d", len(got[0]), len(got[2]))
	}
	if sw.Stats().Forwarded != 1 {
		t.Fatalf("forwarded = %d, want 1", sw.Stats().Forwarded)
	}

	// a -> b again: b is now learned too.
	sw.Send(ports[0], BuildFrame(b, a, EtherTypeVMSH, []byte("z")))
	if len(got[1]) != 2 || len(got[2]) != 1 {
		t.Fatalf("learned unicast leaked: %d %d", len(got[1]), len(got[2]))
	}

	// Broadcast floods everyone but the sender.
	sw.Send(ports[0], BuildFrame(Broadcast, a, EtherTypeVMSH, nil))
	if len(got[0]) != 1 || len(got[1]) != 3 || len(got[2]) != 2 {
		t.Fatalf("broadcast delivery: %d %d %d", len(got[0]), len(got[1]), len(got[2]))
	}
}

// TestLinkCostCharging checks that the clock advances by the modelled
// ingress + switch + egress time for a unicast frame.
func TestLinkCostCharging(t *testing.T) {
	clock := vclock.New()
	costs := vclock.Default()
	sw := New(clock, costs)
	p0 := sw.NewPort("a", LinkParams{})
	p1 := sw.NewPort("b", LinkParams{})
	p1.Deliver = func([]byte) {}
	// Teach the switch b's MAC so the frame unicasts.
	p0.Deliver = func([]byte) {}
	sw.Send(p1, BuildFrame(p0.MAC(), p1.MAC(), EtherTypeVMSH, nil))

	start := clock.Now()
	frame := BuildFrame(p1.MAC(), p0.MAC(), EtherTypeVMSH, make([]byte, 1000))
	sw.Send(p0, frame)
	elapsed := clock.Since(start)

	wire := costs.NetLinkLat + vclock.Copy(len(frame), costs.NetLinkBW)
	want := 2*wire + costs.NetSwitchHop // ingress + egress + lookup
	if elapsed != want {
		t.Fatalf("unicast charged %v, want %v", elapsed, want)
	}
}

// TestLinkParamOverrides checks per-port bandwidth/latency overrides.
func TestLinkParamOverrides(t *testing.T) {
	clock := vclock.New()
	costs := vclock.Default()
	sw := New(clock, costs)
	slow := LinkParams{BandwidthBps: 1e6, Latency: 3 * time.Millisecond}
	p0 := sw.NewPort("slow", slow)
	p1 := sw.NewPort("fast", LinkParams{})
	p1.Deliver = func([]byte) {}

	start := clock.Now()
	frame := BuildFrame(Broadcast, p0.MAC(), EtherTypeVMSH, make([]byte, 100))
	sw.Send(p0, frame)
	elapsed := clock.Since(start)

	ingress := slow.Latency + vclock.Copy(len(frame), slow.BandwidthBps)
	egress := costs.NetLinkLat + vclock.Copy(len(frame), costs.NetLinkBW)
	want := ingress + costs.NetSwitchHop + egress
	if elapsed != want {
		t.Fatalf("override charged %v, want %v", elapsed, want)
	}
}

// TestDropNth checks the deterministic drop pattern: every Nth egress
// frame on the link is lost, independent of payload.
func TestDropNth(t *testing.T) {
	sw := newSwitch()
	p0 := sw.NewPort("tx", LinkParams{})
	p1 := sw.NewPort("rx", LinkParams{DropNth: 3})
	var delivered int
	p1.Deliver = func([]byte) { delivered++ }

	for i := 0; i < 9; i++ {
		sw.Send(p0, BuildFrame(Broadcast, p0.MAC(), EtherTypeVMSH, nil))
	}
	if delivered != 6 {
		t.Fatalf("delivered %d of 9 with DropNth=3, want 6", delivered)
	}
	if p1.Stats().DropsLink != 3 {
		t.Fatalf("DropsLink = %d, want 3", p1.Stats().DropsLink)
	}
	if sw.Stats().Dropped != 3 {
		t.Fatalf("switch Dropped = %d, want 3", sw.Stats().Dropped)
	}
}

func TestOversizeAndNoSink(t *testing.T) {
	sw := newSwitch()
	p0 := sw.NewPort("tx", LinkParams{MTU: 64})
	p1 := sw.NewPort("rx", LinkParams{}) // Deliver never set

	sw.Send(p0, BuildFrame(Broadcast, p0.MAC(), EtherTypeVMSH, make([]byte, 65)))
	if p0.Stats().DropsOversize != 1 {
		t.Fatalf("DropsOversize = %d, want 1", p0.Stats().DropsOversize)
	}
	if p0.Stats().TxFrames != 0 {
		t.Fatal("oversize frame still counted as transmitted")
	}

	sw.Send(p0, BuildFrame(Broadcast, p0.MAC(), EtherTypeVMSH, make([]byte, 64)))
	if p1.Stats().DropsNoSink != 1 {
		t.Fatalf("DropsNoSink = %d, want 1", p1.Stats().DropsNoSink)
	}
	if sw.Stats().Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", sw.Stats().Dropped)
	}
}

// TestDeterminism runs the same traffic twice on fresh switches and
// demands identical clocks and counters.
func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, SwitchStats, []PortStats) {
		clock := vclock.New()
		sw := New(clock, vclock.Default())
		ports := make([]*Port, 4)
		for i := range ports {
			lp := LinkParams{}
			if i == 2 {
				lp.DropNth = 5
			}
			ports[i] = sw.NewPort("vm", lp)
			p := ports[i]
			ports[i].Deliver = func(f []byte) {
				// Reflect unicast traffic back at the sender, like a
				// ping responder — exercises learning + nested Send.
				dst, src, et, pl, _ := ParseFrame(f)
				if dst != Broadcast && len(pl) > 0 && pl[0] == 'q' {
					reply := append([]byte{'r'}, pl[1:]...)
					sw.Send(p, BuildFrame(src, dst, et, reply))
				}
			}
		}
		for i := 0; i < 40; i++ {
			from := ports[i%4]
			to := ports[(i+1)%4]
			sw.Send(from, BuildFrame(to.MAC(), from.MAC(), EtherTypeVMSH, []byte{'q', byte(i)}))
		}
		var ps []PortStats
		for _, p := range ports {
			ps = append(ps, p.Stats())
		}
		return clock.Now(), sw.Stats(), ps
	}

	t1, s1, p1 := run()
	t2, s2, p2 := run()
	if t1 != t2 {
		t.Fatalf("clocks diverged: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("switch stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("port %d stats diverged: %+v vs %+v", i, p1[i], p2[i])
		}
	}
	if t1 == 0 {
		t.Fatal("no virtual time charged at all")
	}
}

func TestInvalidCostModelRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a cost model with zero link bandwidth")
		}
	}()
	bad := vclock.Default()
	bad.NetLinkBW = 0
	New(vclock.New(), bad)
}
