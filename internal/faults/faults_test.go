package faults

import (
	"errors"
	"testing"
	"time"

	"vmsh/internal/obs"
	"vmsh/internal/vclock"
)

func newTestInjector(p *Plan) (*Injector, *vclock.Clock) {
	clock := vclock.New()
	return NewInjector(p, clock, obs.Track{}), clock
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check(OpPtraceAttach); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
	in.SetStage("x")
	if in.Stage() != "" || in.Injected() != 0 || in.Stats() != nil {
		t.Fatal("nil injector leaked state")
	}
}

func TestNilInjectorZeroCost(t *testing.T) {
	var in *Injector
	allocs := testing.AllocsPerRun(1000, func() {
		_ = in.Check(OpProcVMRead)
	})
	if allocs != 0 {
		t.Fatalf("nil Check allocates (%v allocs/op)", allocs)
	}
}

func TestEmptyPlanNoClockNoRNG(t *testing.T) {
	in, clock := newTestInjector(NewPlan(42))
	rngBefore := in.rng
	for i := 0; i < 100; i++ {
		if err := in.Check(OpProcVMRead); err != nil {
			t.Fatal(err)
		}
	}
	if clock.Now() != 0 {
		t.Fatalf("empty plan advanced the clock to %v", clock.Now())
	}
	if in.rng != rngBefore {
		t.Fatal("empty plan consumed randomness")
	}
}

func TestNthFault(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1, Rule{Op: "procvm", Nth: 3}))
	for i := 1; i <= 5; i++ {
		err := in.Check(OpProcVMRead)
		if i == 3 {
			if err == nil {
				t.Fatal("3rd crossing did not fault")
			}
			var f *Fault
			if !errors.As(err, &f) || f.Seq != 3 || f.Op != OpProcVMRead {
				t.Fatalf("fault metadata wrong: %v", err)
			}
			if !errors.Is(err, EFAULT) {
				t.Fatalf("default sentinel not EFAULT: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("crossing %d faulted: %v", i, err)
		}
	}
}

func TestPersistentFault(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1, Rule{Op: "vq:blk", Nth: 2, Persistent: true, Err: EIO}))
	if in.Check(OpVQBlk) != nil {
		t.Fatal("first crossing faulted")
	}
	for i := 0; i < 3; i++ {
		if err := in.Check(OpVQBlk); !errors.Is(err, EIO) {
			t.Fatalf("persistent fault stopped firing: %v", err)
		}
	}
}

func TestTransientDefaultsToEINTR(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1, Rule{Op: "ptrace", Nth: 1, Transient: true}))
	err := in.Check(OpPtraceAttach)
	if !IsTransient(err) || !errors.Is(err, EINTR) {
		t.Fatalf("transient fault: %v", err)
	}
	if IsTransient(errors.New("organic")) {
		t.Fatal("organic error classified transient")
	}
}

func TestOpPrefixBoundary(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1, Rule{Op: "vq:b", Nth: 1}))
	if err := in.Check(OpVQBlk); err != nil {
		t.Fatalf("non-boundary prefix matched: %v", err)
	}
	in2, _ := newTestInjector(NewPlan(1, Rule{Op: "vq", Nth: 1}))
	if err := in2.Check(OpVQBlk); err == nil {
		t.Fatal("boundary prefix did not match")
	}
}

func TestStageFilter(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1, Rule{Op: "", Stage: "kernel_scan", Nth: 1}))
	in.SetStage("memslot_probe")
	if err := in.Check(OpProcVMRead); err != nil {
		t.Fatalf("wrong-stage crossing faulted: %v", err)
	}
	in.SetStage("kernel_scan")
	if err := in.Check(OpProcVMRead); err == nil {
		t.Fatal("stage-matched crossing did not fault")
	}
	var f *Fault
	errors.As(in.Check(OpProcVMRead), &f) // rule is one-shot; nil is fine
}

func TestLatencySpike(t *testing.T) {
	in, clock := newTestInjector(NewPlan(1, Rule{Op: "procvm", Nth: 2, Latency: 5 * time.Millisecond}))
	if err := in.Check(OpProcVMRead); err != nil {
		t.Fatal(err)
	}
	if err := in.Check(OpProcVMRead); err != nil {
		t.Fatalf("latency-only rule failed the crossing: %v", err)
	}
	if clock.Now() != 5*time.Millisecond {
		t.Fatalf("latency not charged: %v", clock.Now())
	}
	if in.Injected() != 1 {
		t.Fatalf("injected count %d", in.Injected())
	}
}

func TestProbDeterministicAcrossSeeds(t *testing.T) {
	run := func(seed uint64) []int {
		in, _ := newTestInjector(NewPlan(seed, Rule{Op: "net:link", Prob: 0.3}))
		var hits []int
		for i := 0; i < 200; i++ {
			if in.Check(OpNetLink) != nil {
				hits = append(hits, i)
			}
		}
		return hits
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob rule degenerate: %d hits", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fault schedules")
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestRecordingStats(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1))
	in.SetRecording(true)
	in.SetStage("a")
	in.Check(OpProcVMRead)
	in.Check(OpProcVMRead)
	in.SetStage("b")
	in.Check(OpProcVMRead)
	in.Check(OpPtraceAttach)
	stats := in.Stats()
	if len(stats) != 3 {
		t.Fatalf("%d stat rows, want 3: %+v", len(stats), stats)
	}
	if stats[0].Op != string(OpProcVMRead) || stats[0].Stage != "a" ||
		stats[0].Count != 2 || stats[0].First != 1 || stats[0].Last != 2 {
		t.Fatalf("row 0: %+v", stats[0])
	}
	if stats[1].Stage != "b" || stats[1].First != 3 {
		t.Fatalf("row 1: %+v", stats[1])
	}
}

func TestParseRule(t *testing.T) {
	r, err := ParseRule("ptrace:nth=3")
	if err != nil || r.Op != "ptrace" || r.Nth != 3 {
		t.Fatalf("%+v err=%v", r, err)
	}
	r, err = ParseRule("ptrace:inject:ioctl:nth=2,transient")
	if err != nil || r.Op != "ptrace:inject:ioctl" || r.Nth != 2 || !r.Transient {
		t.Fatalf("%+v err=%v", r, err)
	}
	r, err = ParseRule("vq:blk:prob=0.01,err=eio,persistent")
	if err != nil || r.Op != "vq:blk" || r.Prob != 0.01 || !errors.Is(r.Err, EIO) || !r.Persistent {
		t.Fatalf("%+v err=%v", r, err)
	}
	r, err = ParseRule("procvm:lat=2ms")
	if err != nil || r.Latency != 2*time.Millisecond || r.Nth != 1 {
		t.Fatalf("%+v err=%v", r, err)
	}
	r, err = ParseRule("procvm")
	if err != nil || r.Nth != 1 {
		t.Fatalf("bare op should default nth=1: %+v err=%v", r, err)
	}
	if _, err = ParseRule("ptrace:nth=x"); err == nil {
		t.Fatal("bad nth accepted")
	}
	if _, err = ParseRule("ptrace:bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err = ParseRule("ptrace:err=ewhat"); err == nil {
		t.Fatal("unknown errno accepted")
	}
	rules, err := ParseRules("ptrace:nth=1; vq:blk:nth=2 ;")
	if err != nil || len(rules) != 2 {
		t.Fatalf("rules=%v err=%v", rules, err)
	}
}

func TestPausedInjectorIsInvisible(t *testing.T) {
	in, _ := newTestInjector(NewPlan(1, Rule{Op: "procvm", Nth: 2}))
	in.SetRecording(true)
	if err := in.Check(OpProcVMRead); err != nil {
		t.Fatal(err)
	}
	in.SetPaused(true)
	if !in.Paused() {
		t.Fatal("Paused() false after SetPaused(true)")
	}
	// The crossing that would have been the faulting 2nd is a no-op:
	// no fault, no sequence number, no recording.
	for i := 0; i < 10; i++ {
		if err := in.Check(OpProcVMRead); err != nil {
			t.Fatalf("paused injector faulted: %v", err)
		}
	}
	if got := in.Stats()[0].Count; got != 1 {
		t.Fatalf("paused crossings recorded: count %d", got)
	}
	in.SetPaused(false)
	if err := in.Check(OpProcVMRead); err == nil {
		t.Fatal("2nd live crossing did not fault after unpause")
	}
}
