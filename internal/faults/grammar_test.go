package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

// TestRuleGrammar is the table-driven spec of the strict CLI grammar:
// every accepted form with its decoded meaning, and every rejected
// form with the reason the error message must name.
func TestRuleGrammar(t *testing.T) {
	accept := []struct {
		spec string
		want Rule
	}{
		{"ptrace", Rule{Op: "ptrace", Nth: 1}},
		{"ptrace:nth=3", Rule{Op: "ptrace", Nth: 3}},
		{"ptrace:inject:ioctl:nth=2,transient", Rule{Op: "ptrace:inject:ioctl", Nth: 2, Transient: true}},
		{"vq:blk:prob=0.25,err=eio,persistent", Rule{Op: "vq:blk", Prob: 0.25, Err: EIO, Persistent: true}},
		{"procvm:readv:lat=2ms", Rule{Op: "procvm:readv", Nth: 1, Latency: 2 * time.Millisecond}},
		{"net:link:nth=7,stage=setup_devices", Rule{Op: "net:link", Nth: 7, Stage: "setup_devices"}},
		// A bare parameter list is a wildcard: it matches every crossing.
		{"prob=0.5", Rule{Prob: 0.5}},
		{"transient", Rule{Nth: 1, Transient: true}},
		{"nth=4,err=eperm", Rule{Nth: 4, Err: EPERM}},
	}
	for _, tc := range accept {
		r, err := ParseRule(tc.spec)
		if err != nil {
			t.Errorf("ParseRule(%q): unexpected error %v", tc.spec, err)
			continue
		}
		if r.Op != tc.want.Op || r.Nth != tc.want.Nth || r.Prob != tc.want.Prob ||
			r.Stage != tc.want.Stage || r.Latency != tc.want.Latency ||
			r.Transient != tc.want.Transient || r.Persistent != tc.want.Persistent ||
			!errors.Is(r.Err, tc.want.Err) {
			t.Errorf("ParseRule(%q) = %+v, want %+v", tc.spec, r, tc.want)
		}
	}

	reject := []struct {
		spec   string
		reason string // substring the error must carry
	}{
		{"", "empty spec"},
		{"   ", "empty spec"},
		{"ptrace::nth=1", "empty op segment"},
		{":nth=1", "empty op segment"},
		{"ptrace:", "empty op segment"},
		{"ptrace:nth=1,", "trailing or doubled comma"},
		{"ptrace:nth=1,,transient", "trailing or doubled comma"},
		{"ptrace:nth=1,nth=2", `duplicate "nth"`},
		{"ptrace:transient,transient", `duplicate "transient"`},
		{"ptrace:transient=yes", "takes no value"},
		{"ptrace:persistent=1", "takes no value"},
		{"ptrace:nth=", "needs a value"},
		{"ptrace:stage=", "needs a value"},
		{"ptrace:nth=x", "bad value"},
		{"ptrace:nth=0", "nth must be >= 1"},
		{"ptrace:nth=-2", "nth must be >= 1"},
		{"ptrace:prob=0", "prob must be in (0,1]"},
		{"ptrace:prob=1.5", "prob must be in (0,1]"},
		{"ptrace:lat=-1ms", "lat must be non-negative"},
		{"ptrace:lat=fast", "bad value"},
		{"ptrace:err=ewhat", "unknown err"},
		{"ptrace:bogus=1", "unknown key"},
		{"ptrace:nth=2,prob=0.5", "mutually exclusive"},
	}
	for _, tc := range reject {
		r, err := ParseRule(tc.spec)
		if err == nil {
			t.Errorf("ParseRule(%q) accepted as %+v, want error containing %q", tc.spec, r, tc.reason)
			continue
		}
		if !strings.Contains(err.Error(), tc.reason) {
			t.Errorf("ParseRule(%q) error %q does not mention %q", tc.spec, err, tc.reason)
		}
	}
}

func TestCrossingClassesWellFormed(t *testing.T) {
	classes := CrossingClasses()
	if len(classes) == 0 {
		t.Fatal("empty taxonomy")
	}
	seen := make(map[Op]bool)
	for _, c := range classes {
		if c.Op == "" || c.Doc == "" {
			t.Errorf("class %+v missing op or doc", c)
		}
		if seen[c.Op] {
			t.Errorf("duplicate class %q", c.Op)
		}
		seen[c.Op] = true
		// Every class must resolve to itself through ClassOf.
		got, ok := ClassOf(c.Op)
		if !ok || got.Op != c.Op {
			t.Errorf("ClassOf(%q) = %+v ok=%v, want the class itself", c.Op, got, ok)
		}
	}
	// Prefix classes resolve their members; tap-only classes are never
	// part of the fault plane's sweep surface.
	if ci, ok := ClassOf(OpPtraceInject + ":ioctl"); !ok || ci.Op != OpPtraceInject {
		t.Errorf("injected-syscall subop did not resolve to %q: %+v ok=%v", OpPtraceInject, ci, ok)
	}
	if ci, ok := ClassOf(OpKVMMMIO); !ok || !ci.TapOnly {
		t.Errorf("kvm:mmio should be tap-only: %+v ok=%v", ci, ok)
	}
	if _, ok := ClassOf("made:up"); ok {
		t.Error("unknown op resolved to a class")
	}
	if !OpVQBlk.PostResume() || Op("ptrace:attach").PostResume() {
		t.Error("PostResume misclassifies")
	}
	if !OpNetLink.DevicePath() || Op("procvm:readv").DevicePath() {
		t.Error("DevicePath misclassifies")
	}
	if OpPtraceInject.Root() != "ptrace" || Op("bpf:kprobe").Root() != "bpf" {
		t.Error("Root misparses")
	}
}

// FuzzFaultRuleGrammar asserts the parser never panics, and that every
// accepted rule satisfies the grammar's invariants (so fuzzing also
// guards the semantic contract, not just memory safety).
func FuzzFaultRuleGrammar(f *testing.F) {
	f.Add("ptrace:nth=3")
	f.Add("procvm:readv:nth=5,transient")
	f.Add("vq:blk:prob=0.01,err=eio,persistent")
	f.Add("ptrace:inject:ioctl:lat=2ms,stage=inject_library")
	f.Add("prob=0.5")
	f.Add("transient")
	f.Add("ptrace::nth=1")
	f.Add("ptrace:nth=1,,transient")
	f.Add("a:b:c:d=e")
	f.Add("nth=1;prob=0.5")
	f.Fuzz(func(t *testing.T, spec string) {
		r, err := ParseRule(spec)
		if err != nil {
			return
		}
		if r.Nth > 0 && r.Prob > 0 {
			t.Fatalf("accepted rule mixes nth and prob: %q -> %+v", spec, r)
		}
		if r.Nth == 0 && r.Prob == 0 {
			t.Fatalf("accepted rule has no trigger: %q -> %+v", spec, r)
		}
		if r.Prob < 0 || r.Prob > 1 || r.Nth < 0 || r.Latency < 0 {
			t.Fatalf("accepted rule out of range: %q -> %+v", spec, r)
		}
		if strings.Contains(r.Op, "::") || strings.HasPrefix(r.Op, ":") || strings.HasSuffix(r.Op, ":") {
			t.Fatalf("accepted op with empty segment: %q -> %q", spec, r.Op)
		}
		if utf8.ValidString(spec) {
			// Accepted specs round-trip through ParseRules unchanged.
			rules, err := ParseRules(spec)
			if strings.Contains(spec, ";") {
				return // split into multiple specs; no 1:1 comparison
			}
			if err != nil || len(rules) != 1 {
				t.Fatalf("ParseRules(%q) = %v, %v after ParseRule accepted it", spec, rules, err)
			}
		}
	})
}
