package faults

// This file is the shared crossing taxonomy: the one authoritative
// enumeration of host-crossing classes, consumed by the E8 fault sweep
// (which derives its single-fault points from it), by the record/replay
// subsystem (which validates log records against it), and by anything
// else that needs to reason about "every way VMSH touches the host".
// It also defines the Tap interface — a passive observer sharing the
// injector's crossing points, stage context and pause semantics — which
// internal/replay's Recorder and Verifier implement.

import (
	"errors"
	"strings"
)

// Tap-only crossing classes: observable by a Tap but never consulted
// through Injector.Check, so arming a fault plan cannot target them and
// the E8 sweep's crossing-point enumeration is unaffected.
const (
	// OpVQCons is the console device's virtqueue service pass.
	OpVQCons Op = "vq:cons"
	// OpKVMMMIO is one MMIO exit dispatched by the (simulated) KVM
	// module — device register traffic as the hypervisor kernel side
	// sees it.
	OpKVMMMIO Op = "kvm:mmio"
)

// Dropped marks a crossing whose payload was discarded by design (a
// lossy link, a deliberate frame drop) rather than failed with an
// errno. It never surfaces as a Go error from the data path; it exists
// so taps can classify drop crossings distinctly from faults.
var Dropped = errors.New("payload dropped")

// ClassInfo describes one crossing class for sweep drivers and log
// validators.
type ClassInfo struct {
	// Op is the class name; with Prefix set it covers every crossing
	// that appends further ':'-separated sub-ops ("ptrace:inject"
	// covers "ptrace:inject:ioctl").
	Op Op
	// Prefix marks an open class: concrete crossings append sub-ops.
	Prefix bool
	// PostResume marks classes whose crossings (also) occur after the
	// guest has been resumed — device-path and steady-state traffic.
	// Faults there do not fail the attach transaction; they degrade
	// service. Sweep invariants must therefore be relaxed: guest RAM
	// keeps changing while the guest runs, so only structural state
	// (mappings, fds) is comparable.
	PostResume bool
	// DevicePath marks the hosted-device data path (virtqueue service
	// and link delivery), where faults degrade gracefully in-protocol
	// (IOErr status bytes, dropped frames) and are invisible to the
	// attach transaction's retry machinery.
	DevicePath bool
	// TapOnly marks classes never consulted through Injector.Check:
	// they are observable in recordings but cannot be fault targets.
	TapOnly bool
	// Doc is a one-line description.
	Doc string
}

// crossingClasses is the authoritative class list, in taxonomy order:
// attach-path ptrace, address-space copies, discovery, then the device
// data path.
var crossingClasses = []ClassInfo{
	{Op: OpPtraceAttach, Doc: "PTRACE_SEIZE of the hypervisor"},
	{Op: OpPtraceInterrupt, Doc: "PTRACE_INTERRUPT of every hypervisor thread"},
	{Op: OpPtraceResume, Doc: "PTRACE_CONT of every hypervisor thread"},
	{Op: OpPtraceGetRegs, Doc: "PTRACE_GETREGS of a stopped thread"},
	{Op: OpPtraceSetRegs, Doc: "PTRACE_SETREGS of a stopped thread"},
	{Op: OpPtraceInject, Prefix: true, Doc: "syscall injected through the stopped target (sub-op = syscall name)"},
	{Op: OpProcVMRead, Doc: "process_vm_readv from the hypervisor address space"},
	{Op: OpProcVMWrite, Doc: "process_vm_writev into the hypervisor address space"},
	{Op: OpProcFDInfo, Doc: "/proc/<pid>/fd enumeration (KVM fd discovery)"},
	{Op: OpKProbe, Doc: "eBPF kprobe attach on kvm_vm_ioctl (memslot probe)"},
	{Op: OpVQBlk, PostResume: true, DevicePath: true, Doc: "virtio-blk virtqueue service pass"},
	{Op: OpVQCons, PostResume: true, DevicePath: true, TapOnly: true, Doc: "virtio-console virtqueue service pass"},
	{Op: OpVQNet, PostResume: true, DevicePath: true, Doc: "virtio-net tx virtqueue service pass"},
	{Op: OpNetLink, PostResume: true, DevicePath: true, Doc: "netsim link delivery of one frame"},
	{Op: OpKVMMMIO, PostResume: true, TapOnly: true, Doc: "KVM MMIO exit dispatch (guest register access)"},
	{Op: OpRemoteGet, PostResume: true, DevicePath: true, Doc: "remote storage backend GET of one object chunk"},
	{Op: OpRemotePut, PostResume: true, DevicePath: true, Doc: "remote storage backend PUT of one object chunk"},
	{Op: OpRemoteFlush, PostResume: true, DevicePath: true, Doc: "remote storage backend flush barrier"},
}

// CrossingClasses returns the authoritative crossing-class taxonomy in
// stable order. Callers own the returned slice.
func CrossingClasses() []ClassInfo {
	out := make([]ClassInfo, len(crossingClasses))
	copy(out, crossingClasses)
	return out
}

// ClassOf resolves a concrete crossing name to its class: an exact
// match, or the longest Prefix class covering it at a ':' boundary.
func ClassOf(op Op) (ClassInfo, bool) {
	best := -1
	for i, c := range crossingClasses {
		if string(c.Op) == string(op) {
			return c, true
		}
		if c.Prefix && opMatches(string(c.Op), string(op)) &&
			(best < 0 || len(c.Op) > len(crossingClasses[best].Op)) {
			best = i
		}
	}
	if best >= 0 {
		return crossingClasses[best], true
	}
	return ClassInfo{}, false
}

// PostResume reports whether the crossing's class (also) occurs after
// guest resume — see ClassInfo.PostResume. Unknown ops report false.
func (o Op) PostResume() bool {
	c, ok := ClassOf(o)
	return ok && c.PostResume
}

// DevicePath reports whether the crossing's class is hosted-device
// data path — see ClassInfo.DevicePath. Unknown ops report false.
func (o Op) DevicePath() bool {
	c, ok := ClassOf(o)
	return ok && c.DevicePath
}

// Root returns the first ':'-segment of the op name ("procvm:readv" →
// "procvm"), the coarse grouping replay traces use for track names.
func (o Op) Root() string {
	s := string(o)
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i]
	}
	return s
}

// Digest is an incremental FNV-64a accumulator used to summarise
// crossing arguments and results without retaining payload bytes. The
// zero value is NOT ready to use; start from NewDigest.
type Digest uint64

const (
	digestOffset Digest = 14695981039346656037
	digestPrime  Digest = 1099511628211
)

// NewDigest returns the FNV-64a offset basis.
func NewDigest() Digest { return digestOffset }

// Byte folds one byte into the digest.
func (d Digest) Byte(b byte) Digest { return (d ^ Digest(b)) * digestPrime }

// Bytes folds a byte slice into the digest.
func (d Digest) Bytes(p []byte) Digest {
	for _, b := range p {
		d = (d ^ Digest(b)) * digestPrime
	}
	return d
}

// U64 folds a 64-bit value (little-endian) into the digest.
func (d Digest) U64(v uint64) Digest {
	for i := 0; i < 8; i++ {
		d = (d ^ Digest(byte(v))) * digestPrime
		v >>= 8
	}
	return d
}

// Str folds a string into the digest.
func (d Digest) Str(s string) Digest {
	for i := 0; i < len(s); i++ {
		d = (d ^ Digest(s[i])) * digestPrime
	}
	return d
}

// ErrClass maps a crossing error to its stable log classification:
// "" for success, the lower-case sentinel name for injected faults
// ("efault", "eintr", ...), "drop" for discarded payloads, and "err"
// for any organic simulation error. Classification — not the error
// text — is recorded, so logs stay byte-stable across message edits.
func ErrClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, Dropped):
		return "drop"
	case errors.Is(err, EFAULT):
		return "efault"
	case errors.Is(err, EIO):
		return "eio"
	case errors.Is(err, EPERM):
		return "eperm"
	case errors.Is(err, ENOSYS):
		return "enosys"
	case errors.Is(err, EINTR):
		return "eintr"
	case errors.Is(err, EAGAIN):
		return "eagain"
	default:
		return "err"
	}
}

// Crossing is one observed host crossing as delivered to a Tap:
// digests and classifications only, never payload bytes, so records
// are fixed-size and logs stay compact.
type Crossing struct {
	Op     Op     // concrete crossing name ("ptrace:inject:ioctl")
	Stage  string // injector stage context at crossing time
	Args   uint64 // FNV-64a digest of the crossing's inputs
	Result uint64 // FNV-64a digest of the crossing's outputs
	Err    string // ErrClass of the outcome ("" = success)
}

// Tap observes crossings. Implementations must not advance the clock,
// consume randomness or touch guest state: a tap is a pure observer,
// and an armed tap must leave virtual time bit-identical to an
// unarmed run (the E8 zero-perturbation invariant extends to taps).
type Tap interface {
	Crossing(Crossing)
}

// Taps is the crossing-observation hub a host embeds. It shares the
// injector's context: crossings made while the injector is paused
// (rollback, detach undo) are not observed, and the injector's stage
// annotates every delivered crossing. The zero value is inert.
type Taps struct {
	tap Tap
	in  *Injector
}

// Arm installs (or with nil removes) the observer.
func (t *Taps) Arm(tap Tap) {
	if t != nil {
		t.tap = tap
	}
}

// Bind associates the injector whose pause/stage context gates
// observation. A nil injector means crossings are always observed
// with an empty stage.
func (t *Taps) Bind(in *Injector) {
	if t != nil {
		t.in = in
	}
}

// Active reports whether crossings are currently observed. Callers on
// hot paths should gate argument digesting on this — when false the
// cost of an instrumented crossing is exactly this check.
func (t *Taps) Active() bool {
	return t != nil && t.tap != nil && !t.in.Paused()
}

// Crossing delivers one observation if the hub is active.
func (t *Taps) Crossing(op Op, args, result Digest, err error) {
	if !t.Active() {
		return
	}
	t.tap.Crossing(Crossing{
		Op:     op,
		Stage:  t.in.Stage(),
		Args:   uint64(args),
		Result: uint64(result),
		Err:    ErrClass(err),
	})
}

// Tee fans one crossing stream out to several taps (e.g. recording a
// session while also verifying it against a prior log).
func Tee(taps ...Tap) Tap {
	out := make(teeTap, 0, len(taps))
	for _, t := range taps {
		if t != nil {
			out = append(out, t)
		}
	}
	return out
}

type teeTap []Tap

func (tt teeTap) Crossing(c Crossing) {
	for _, t := range tt {
		t.Crossing(c)
	}
}
