// Package faults is a deterministic, seeded fault-injection plane for
// the simulated host crossings VMSH depends on: ptrace operations,
// process_vm_readv/writev, injected ioctls and mmaps, virtqueue
// service passes and netsim link delivery.
//
// Every crossing calls Injector.Check with a hierarchical operation
// name ("ptrace:inject:ioctl", "procvm:readv", "vq:blk", ...). A fault
// Plan is a list of composable Rules matched against those names:
// fail-the-Nth-crossing, seeded per-crossing probability, transient
// (EINTR/EAGAIN — a retry succeeds) versus persistent faults, and
// vclock-charged latency spikes. Two runs with the same plan and seed
// inject the same faults at the same virtual times; a nil injector (or
// an empty plan) neither advances the clock nor consumes randomness,
// so unfaulted runs stay bit-identical to a build without the plane.
//
// The design follows IRIS-style hypervisor-interface fault sweeps
// (arXiv:2303.12817): enumerate every crossing of the attach path,
// then re-attach once per single-fault point and pin the
// guest-observable state as the invariant.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"vmsh/internal/obs"
	"vmsh/internal/vclock"
)

// Op names one host-crossing class. Names are hierarchical,
// ':'-separated; rules match by prefix at segment boundaries, so a
// rule for "ptrace" covers "ptrace:inject:ioctl".
type Op string

// The crossing classes the simulation wires up.
const (
	OpPtraceAttach    Op = "ptrace:attach"
	OpPtraceInterrupt Op = "ptrace:interrupt"
	OpPtraceResume    Op = "ptrace:resume"
	OpPtraceGetRegs   Op = "ptrace:getregs"
	OpPtraceSetRegs   Op = "ptrace:setregs"
	// OpPtraceInject is the prefix for injected syscalls; the concrete
	// crossing appends the syscall name ("ptrace:inject:mmap").
	OpPtraceInject Op = "ptrace:inject"
	OpProcVMRead   Op = "procvm:readv"
	OpProcVMWrite  Op = "procvm:writev"
	OpProcFDInfo   Op = "procfs:fdinfo"
	OpKProbe       Op = "bpf:kprobe"
	OpVQBlk        Op = "vq:blk"
	OpVQNet        Op = "vq:net"
	OpNetLink      Op = "net:link"
	// Remote storage backend object operations (internal/storage):
	// GET/PUT of one object chunk and the flush barrier.
	OpRemoteGet   Op = "remote:get"
	OpRemotePut   Op = "remote:put"
	OpRemoteFlush Op = "remote:flush"
)

// Injected errno-flavoured sentinels. EINTR and EAGAIN are the
// transient pair: a faulted operation retried later succeeds.
var (
	EFAULT = errors.New("injected fault: bad address (EFAULT)")
	EIO    = errors.New("injected fault: input/output error (EIO)")
	EPERM  = errors.New("injected fault: operation not permitted (EPERM)")
	ENOSYS = errors.New("injected fault: function not implemented (ENOSYS)")
	EINTR  = errors.New("injected fault: interrupted system call (EINTR)")
	EAGAIN = errors.New("injected fault: resource temporarily unavailable (EAGAIN)")
)

// Fault is the error an injected failure surfaces as. It wraps the
// configured sentinel, so errors.Is(err, faults.EINTR) works through
// any amount of caller wrapping.
type Fault struct {
	Op        Op     // the crossing that faulted
	Seq       int    // 1-based per-op crossing number
	Stage     string // injector stage context at fault time, if any
	Err       error  // the injected sentinel
	Transient bool   // a retry of the operation will succeed
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "persistent"
	if f.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("%s fault at %s #%d: %v", kind, f.Op, f.Seq, f.Err)
}

// Unwrap exposes the injected sentinel to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// IsTransient reports whether err is (or wraps) a transient injected
// fault — one whose operation should be retried.
func IsTransient(err error) bool {
	var f *Fault
	if errors.As(err, &f) {
		return f.Transient
	}
	return errors.Is(err, EINTR) || errors.Is(err, EAGAIN)
}

// IsFault reports whether err originates from the injection plane at
// all (as opposed to an organic simulation error).
func IsFault(err error) bool {
	var f *Fault
	return errors.As(err, &f)
}

// Rule is one composable fault clause. A rule fires when its Op
// prefix and optional Stage filter match a crossing AND its trigger
// condition (Nth or Prob) holds.
type Rule struct {
	// Op prefix-matches the crossing name at ':' boundaries; ""
	// matches every crossing.
	Op string
	// Stage, when non-empty, restricts the rule to crossings made
	// while the injector's stage context equals it (the attach
	// transaction publishes its stage names here).
	Stage string
	// Nth fires on the Nth crossing matching the filters (1-based).
	Nth int
	// Persistent, with Nth, keeps firing on every later match too —
	// a hard failure rather than a one-shot glitch.
	Persistent bool
	// Prob fires each matching crossing with this seeded probability
	// (used when Nth is zero).
	Prob float64
	// Transient marks the fault retryable; the default sentinel
	// becomes EINTR instead of EFAULT.
	Transient bool
	// Err overrides the injected sentinel (EFAULT/EINTR by default).
	Err error
	// Latency is charged to the virtual clock when the rule fires. A
	// rule with Latency but nil Err and Transient=false is a pure
	// latency spike: the crossing is delayed, not failed.
	Latency time.Duration
}

// Plan is a seeded set of rules.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// NewPlan builds a plan.
func NewPlan(seed uint64, rules ...Rule) *Plan {
	return &Plan{Seed: seed, Rules: rules}
}

// opMatches reports whether the rule prefix covers the crossing name,
// honouring ':' segment boundaries ("vq" covers "vq:blk"; "vq:b" does
// not).
func opMatches(prefix, op string) bool {
	if prefix == "" || prefix == op {
		return true
	}
	return strings.HasPrefix(op, prefix) && op[len(prefix)] == ':'
}

// CrossingStat summarises every crossing of one (op, stage) class seen
// while recording: how many there were and the per-op sequence numbers
// of the first and last. The sweep driver derives its single-fault
// points from these.
type CrossingStat struct {
	Op    string
	Stage string
	Count int
	First int // per-op sequence number of the first crossing
	Last  int // per-op sequence number of the last crossing
}

// Injector evaluates a plan at every crossing. All methods are safe on
// a nil receiver, which is the disabled state: a nil injector performs
// one pointer comparison and nothing else — no clock, no RNG, no
// allocation — so runs without a plan stay bit-identical.
type Injector struct {
	plan  *Plan
	clock *vclock.Clock
	track obs.Track

	stage    string
	paused   bool
	rng      uint64
	opSeq    map[string]int
	ruleHits []int
	injected int

	record  bool
	statIdx map[string]int
	stats   []CrossingStat
}

// NewInjector arms a plan against the given clock. track (may be the
// zero Track) carries one trace event per injected fault.
func NewInjector(p *Plan, clock *vclock.Clock, track obs.Track) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{
		plan:     p,
		clock:    clock,
		track:    track,
		rng:      p.Seed,
		opSeq:    make(map[string]int),
		ruleHits: make([]int, len(p.Rules)),
	}
}

// SetStage publishes the caller's current stage name (the attach
// transaction's stage context) for Stage-filtered rules and recording.
func (in *Injector) SetStage(s string) {
	if in != nil {
		in.stage = s
	}
}

// Stage returns the current stage context.
func (in *Injector) Stage() string {
	if in == nil {
		return ""
	}
	return in.stage
}

// SetPaused suspends the plane entirely: while paused Check is a
// complete no-op — no sequence numbers, no rule evaluation, no
// recording. Rollback and detach pause the injector so that undo
// crossings can never fault recursively and never perturb the fault
// schedule of the run they are cleaning up after.
func (in *Injector) SetPaused(on bool) {
	if in != nil {
		in.paused = on
	}
}

// Paused reports whether the plane is suspended.
func (in *Injector) Paused() bool {
	return in != nil && in.paused
}

// SetRecording toggles crossing aggregation (see Stats).
func (in *Injector) SetRecording(on bool) {
	if in == nil {
		return
	}
	in.record = on
	if on && in.statIdx == nil {
		in.statIdx = make(map[string]int)
	}
}

// Stats returns the recorded crossing classes in first-seen order.
func (in *Injector) Stats() []CrossingStat {
	if in == nil {
		return nil
	}
	out := make([]CrossingStat, len(in.stats))
	copy(out, in.stats)
	return out
}

// Injected reports how many rules have fired (including latency-only
// spikes).
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	return in.injected
}

// rand draws the next seeded uniform in [0,1) (splitmix64).
func (in *Injector) rand() float64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Check is the crossing hook: it evaluates the plan against op and
// either returns nil (no fault), returns a *Fault, or charges a
// latency spike and returns nil.
func (in *Injector) Check(op Op) error {
	if in == nil || in.paused {
		return nil
	}
	key := string(op)
	seq := in.opSeq[key] + 1
	in.opSeq[key] = seq
	if in.record {
		in.recordCrossing(key, seq)
	}
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if !opMatches(r.Op, key) {
			continue
		}
		if r.Stage != "" && r.Stage != in.stage {
			continue
		}
		trigger := false
		if r.Nth > 0 {
			in.ruleHits[i]++
			if r.Persistent {
				trigger = in.ruleHits[i] >= r.Nth
			} else {
				trigger = in.ruleHits[i] == r.Nth
			}
		} else if r.Prob > 0 {
			trigger = in.rand() < r.Prob
		}
		if !trigger {
			continue
		}
		in.injected++
		if r.Latency > 0 {
			in.clock.Advance(r.Latency)
		}
		sentinel := r.Err
		if sentinel == nil {
			if r.Transient {
				sentinel = EINTR
			} else if r.Latency > 0 {
				// Pure latency spike: delayed, not failed.
				in.track.Event1("fault", "delay "+key, "ns", int64(r.Latency))
				return nil
			} else {
				sentinel = EFAULT
			}
		}
		in.track.Event1("fault", "inject "+key, "seq", int64(seq))
		return &Fault{Op: op, Seq: seq, Stage: in.stage, Err: sentinel, Transient: r.Transient}
	}
	return nil
}

func (in *Injector) recordCrossing(key string, seq int) {
	sk := key + "\x00" + in.stage
	if i, ok := in.statIdx[sk]; ok {
		in.stats[i].Count++
		in.stats[i].Last = seq
		return
	}
	in.statIdx[sk] = len(in.stats)
	in.stats = append(in.stats, CrossingStat{
		Op: key, Stage: in.stage, Count: 1, First: seq, Last: seq,
	})
}

// errNames maps spec-string error names to sentinels.
var errNames = map[string]error{
	"efault": EFAULT,
	"eio":    EIO,
	"eperm":  EPERM,
	"enosys": ENOSYS,
	"eintr":  EINTR,
	"eagain": EAGAIN,
}

// isParamSegment reports whether a ':'-segment of a spec is the
// parameter list rather than part of the op name. Op segments never
// contain '=' or ',', so either marks the parameter list — this is
// what routes "ptrace:transient,transient" into the duplicate-flag
// check instead of silently parsing it as an op name.
func isParamSegment(s string) bool {
	return strings.ContainsAny(s, "=,") || s == "transient" || s == "persistent"
}

// ParseRule parses one CLI fault spec of the form
//
//	op[:subop...][:key=val[,key=val|flag]...]
//
// e.g. "ptrace:nth=3", "procvm:readv:nth=5,transient",
// "vq:blk:prob=0.01", "ptrace:inject:lat=2ms" (latency-only),
// "ptrace:nth=2,persistent,err=eperm,stage=inject_library".
// A spec without nth/prob defaults to nth=1. A spec that is only a
// parameter list ("prob=0.01") matches every crossing.
//
// The grammar is strict: empty op segments ("ptrace::nth=1"), empty
// parameter segments ("nth=1,,transient" or a trailing comma),
// duplicate keys or flags, flags carrying values ("transient=yes"),
// and combining nth with prob are all rejected with a descriptive
// error rather than silently ignored.
func ParseRule(spec string) (Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Rule{}, fmt.Errorf("faults: empty spec")
	}
	parts := strings.Split(spec, ":")
	opEnd := len(parts)
	if opEnd > 0 && isParamSegment(parts[opEnd-1]) {
		opEnd--
	}
	for _, seg := range parts[:opEnd] {
		if seg == "" {
			return Rule{}, fmt.Errorf("faults: empty op segment in spec %q", spec)
		}
	}
	r := Rule{Op: strings.Join(parts[:opEnd], ":")}
	if opEnd < len(parts) {
		seen := make(map[string]bool)
		for _, kv := range strings.Split(parts[opEnd], ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				return Rule{}, fmt.Errorf("faults: empty parameter segment in spec %q (trailing or doubled comma)", spec)
			}
			key, val, hasVal := strings.Cut(kv, "=")
			if seen[key] {
				return Rule{}, fmt.Errorf("faults: duplicate %q in spec %q", key, spec)
			}
			seen[key] = true
			switch key {
			case "transient", "persistent":
				if hasVal {
					return Rule{}, fmt.Errorf("faults: flag %q takes no value in spec %q", key, spec)
				}
			case "nth", "prob", "stage", "lat", "err":
				if !hasVal || val == "" {
					return Rule{}, fmt.Errorf("faults: key %q needs a value in spec %q", key, spec)
				}
			default:
				return Rule{}, fmt.Errorf("faults: unknown key %q in spec %q", key, spec)
			}
			var err error
			switch key {
			case "transient":
				r.Transient = true
			case "persistent":
				r.Persistent = true
			case "nth":
				r.Nth, err = strconv.Atoi(val)
				if err == nil && r.Nth < 1 {
					return Rule{}, fmt.Errorf("faults: nth must be >= 1 in spec %q", spec)
				}
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob <= 0 || r.Prob > 1) {
					return Rule{}, fmt.Errorf("faults: prob must be in (0,1] in spec %q", spec)
				}
			case "stage":
				r.Stage = val
			case "lat":
				r.Latency, err = time.ParseDuration(val)
				if err == nil && r.Latency < 0 {
					return Rule{}, fmt.Errorf("faults: lat must be non-negative in spec %q", spec)
				}
			case "err":
				sentinel, ok := errNames[strings.ToLower(val)]
				if !ok {
					return Rule{}, fmt.Errorf("faults: unknown err %q (want one of %s)", val, errNameList())
				}
				r.Err = sentinel
			}
			if err != nil {
				return Rule{}, fmt.Errorf("faults: bad value for %s in spec %q: %v", key, spec, err)
			}
		}
		if r.Nth > 0 && r.Prob > 0 {
			return Rule{}, fmt.Errorf("faults: nth and prob are mutually exclusive in spec %q", spec)
		}
	}
	if r.Nth == 0 && r.Prob == 0 {
		r.Nth = 1
	}
	return r, nil
}

// ParseRules parses a ';'-separated list of specs.
func ParseRules(specs string) ([]Rule, error) {
	var out []Rule
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		r, err := ParseRule(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func errNameList() string {
	names := make([]string, 0, len(errNames))
	for n := range errNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}
