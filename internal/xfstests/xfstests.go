// Package xfstests reimplements the structure of the xfstests "quick"
// group used in §6.1: 619 filesystem correctness tests run identically
// against the native device, qemu-blk and vmsh-blk. The paper's
// result — everything passes natively, the same three quota-reporting
// tests fail on both virtio paths, some tests auto-skip — falls out of
// the corpus plus the FUA-gated quota mechanism in simplefs.
package xfstests

import (
	"fmt"

	"vmsh/internal/guestos"
)

// Env describes one device/filesystem configuration under test.
type Env struct {
	Name string
	// NewProc returns a fresh guest (or host-proxy) process whose
	// namespace has the filesystem under test mounted at Mount.
	NewProc func() *guestos.Proc
	// Mount is the mount point of the filesystem under test.
	Mount string
	// Remount syncs, unmounts and remounts the filesystem (crash- and
	// persistence-style tests need it).
	Remount func() error
	// QuotaCapable reports whether the backing device supports FUA
	// (quota reporting requires it).
	QuotaCapable bool
	// Features the environment claims; tests probing an absent
	// feature auto-skip (reflink, dax, ... are never claimed here).
	Features map[string]bool
}

// T is a test's execution context.
type T struct {
	Env *Env
	P   *guestos.Proc
	Dir string // unique scratch directory for this test
}

// path joins a name into the test directory.
func (t *T) path(name string) string { return t.Dir + "/" + name }

// Test is one corpus entry.
type Test struct {
	ID     int
	Family string
	Name   string
	// Requires names a feature; tests requiring an unclaimed feature
	// are skipped ("tests for a different file system ... are
	// automatically skipped", §6.1).
	Requires string
	Fn       func(t *T) error
}

// Result summarises one environment's run.
type Result struct {
	Env      string
	Total    int
	Passed   int
	Failed   int
	Skipped  int
	Failures []string
}

// Run executes the suite in the environment.
func Run(env *Env, tests []Test) Result {
	res := Result{Env: env.Name, Total: len(tests)}
	for _, tc := range tests {
		if tc.Requires != "" && !env.Features[tc.Requires] {
			res.Skipped++
			continue
		}
		p := env.NewProc()
		dir := fmt.Sprintf("%s/test-%04d", env.Mount, tc.ID)
		if err := p.Mkdir(dir, 0o755); err != nil {
			res.Failed++
			res.Failures = append(res.Failures, fmt.Sprintf("%04d %s: mkdir: %v", tc.ID, tc.Name, err))
			continue
		}
		t := &T{Env: env, P: p, Dir: dir}
		if err := tc.Fn(t); err != nil {
			res.Failed++
			res.Failures = append(res.Failures, fmt.Sprintf("%04d %s/%s: %v", tc.ID, tc.Family, tc.Name, err))
		} else {
			res.Passed++
		}
	}
	return res
}

// SuiteSize is the size of the "quick" group.
const SuiteSize = 619

// Suite generates the full corpus. Test IDs are stable.
func Suite() []Test {
	var tests []Test
	add := func(family, name string, fn func(t *T) error) {
		tests = append(tests, Test{ID: len(tests) + 1, Family: family, Name: name, Fn: fn})
	}
	addReq := func(family, name, req string, fn func(t *T) error) {
		tests = append(tests, Test{ID: len(tests) + 1, Family: family, Name: name, Requires: req, Fn: fn})
	}

	addCreateTests(add)
	addRWTests(add)
	addSparseTests(add)
	addTruncateTests(add)
	addRenameTests(add)
	addLinkTests(add)
	addDirTests(add)
	addAttrTests(add)
	addPersistenceTests(add)
	addStatfsTests(add)
	addLargeFileTests(add)
	addPathTests(add)
	addInterleavedTests(add)
	addEdgeTests(add)
	addQuotaTests(add)
	addSkippedFeatureTests(addReq)

	if len(tests) != SuiteSize {
		panic(fmt.Sprintf("xfstests: corpus has %d tests, want %d", len(tests), SuiteSize))
	}
	return tests
}

func expect(cond bool, format string, args ...any) error {
	if cond {
		return nil
	}
	return fmt.Errorf(format, args...)
}

func expectErr(got, want error, what string) error {
	if got != want {
		return fmt.Errorf("%s: got %v, want %v", what, got, want)
	}
	return nil
}

// fill produces a deterministic pattern buffer.
func fill(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func writeAll(t *T, path string, data []byte) error {
	return t.P.WriteFile(path, data, 0o644)
}

func readBack(t *T, path string, want []byte) error {
	got, err := t.P.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read %s: %w", path, err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", path, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s: byte %d = %#x, want %#x", path, i, got[i], want[i])
		}
	}
	return nil
}
