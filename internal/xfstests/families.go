package xfstests

import (
	"fmt"

	"vmsh/internal/fserr"
	"vmsh/internal/guestos"
	"vmsh/internal/simplefs"
)

type addFn func(family, name string, fn func(t *T) error)
type addReqFn func(family, name, req string, fn func(t *T) error)

// addCreateTests: 40 tests of creation basics.
func addCreateTests(add addFn) {
	// 16 permission-mode variants.
	for _, mode := range []uint32{0o644, 0o600, 0o755, 0o400, 0o444, 0o222, 0o700, 0o777,
		0o640, 0o660, 0o555, 0o111, 0o751, 0o764, 0o440, 0o000} {
		mode := mode
		add("create", fmt.Sprintf("mode-%04o", mode), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Chmod(t.path("f"), mode); err != nil {
				return err
			}
			st, err := t.P.Stat(t.path("f"))
			if err != nil {
				return err
			}
			return expect(st.Mode&simplefs.ModePermMask == mode, "mode %04o != %04o", st.Mode&simplefs.ModePermMask, mode)
		})
	}
	// 12 name-shape variants.
	for i, name := range []string{"a", "ab", "file.txt", "with-dash", "with_underscore",
		"UPPER", "MiXeD.Case", "d.o.t.s", "123numeric", "trailing.", "x.tar.gz", "longish-name-with-many-characters-in-it"} {
		name := name
		add("create", fmt.Sprintf("name-%d", i), func(t *T) error {
			if err := writeAll(t, t.path(name), []byte(name)); err != nil {
				return err
			}
			return readBack(t, t.path(name), []byte(name))
		})
	}
	// 6 exclusive-create / existence semantics.
	add("create", "excl-conflict", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		_, err := t.P.Open(t.path("f"), guestos.OCreate|guestos.OExcl|guestos.OWronly, 0o644)
		return expectErr(err, fserr.ErrExists, "O_EXCL on existing")
	})
	add("create", "excl-fresh", func(t *T) error {
		f, err := t.P.Open(t.path("fresh"), guestos.OCreate|guestos.OExcl|guestos.OWronly, 0o644)
		if err != nil {
			return err
		}
		return f.Close()
	})
	add("create", "open-missing", func(t *T) error {
		_, err := t.P.Open(t.path("nope"), guestos.ORdonly, 0)
		return expectErr(err, fserr.ErrNotFound, "open missing")
	})
	add("create", "create-in-missing-dir", func(t *T) error {
		_, err := t.P.Open(t.path("no/such/dir/f"), guestos.OCreate|guestos.OWronly, 0o644)
		return expectErr(err, fserr.ErrNotFound, "create under missing dir")
	})
	add("create", "create-under-file", func(t *T) error {
		if err := writeAll(t, t.path("plain"), nil); err != nil {
			return err
		}
		_, err := t.P.Open(t.path("plain/child"), guestos.OCreate|guestos.OWronly, 0o644)
		return expect(err != nil, "created a child under a regular file")
	})
	add("create", "trunc-flag", func(t *T) error {
		if err := writeAll(t, t.path("f"), fill(1000, 1)); err != nil {
			return err
		}
		f, err := t.P.Open(t.path("f"), guestos.OWronly|guestos.OTrunc, 0)
		if err != nil {
			return err
		}
		f.Close()
		st, _ := t.P.Stat(t.path("f"))
		return expect(st.Size == 0, "O_TRUNC left size %d", st.Size)
	})
	// 6 initial-stat invariants.
	for i, check := range []struct {
		name string
		fn   func(st simplefs.FileInfo) error
	}{
		{"nlink-one", func(st simplefs.FileInfo) error { return expect(st.Nlink == 1, "nlink %d", st.Nlink) }},
		{"size-zero", func(st simplefs.FileInfo) error { return expect(st.Size == 0, "size %d", st.Size) }},
		{"is-regular", func(st simplefs.FileInfo) error {
			return expect(st.Mode&simplefs.ModeTypeMask == simplefs.ModeFile, "mode %#x", st.Mode)
		}},
		{"uid-propagated", func(st simplefs.FileInfo) error { return expect(st.UID == 0, "uid %d", st.UID) }},
		{"ino-nonzero", func(st simplefs.FileInfo) error { return expect(st.Ino != 0, "ino 0") }},
		{"gid-propagated", func(st simplefs.FileInfo) error { return expect(st.GID == 0, "gid %d", st.GID) }},
	} {
		check := check
		add("create", fmt.Sprintf("stat-%d-%s", i, check.name), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			st, err := t.P.Stat(t.path("f"))
			if err != nil {
				return err
			}
			return check.fn(st)
		})
	}
}

// addRWTests: 96 read/write pattern tests — an offset x size matrix
// crossing block and page boundaries, buffered and direct.
func addRWTests(add addFn) {
	offsets := []int64{0, 1, 511, 512, 4095, 4096, 4097, 8191}
	sizes := []int{1, 100, 512, 4096, 5000, 12288}
	for _, off := range offsets {
		for _, size := range sizes {
			off, size := off, size
			add("rw", fmt.Sprintf("buffered-off%d-len%d", off, size), func(t *T) error {
				data := fill(size, byte(off))
				f, err := t.P.Open(t.path("f"), guestos.OCreate|guestos.ORdwr, 0o644)
				if err != nil {
					return err
				}
				defer f.Close()
				if _, err := f.WriteAt(data, off); err != nil {
					return err
				}
				got := make([]byte, size)
				if _, err := f.ReadAt(got, off); err != nil {
					return err
				}
				for i := range got {
					if got[i] != data[i] {
						return fmt.Errorf("byte %d mismatch", i)
					}
				}
				st, _ := t.P.Stat(t.path("f"))
				return expect(st.Size == off+int64(size), "size %d want %d", st.Size, off+int64(size))
			})
		}
	}
	// 48 more: direct IO matrix (aligned only) + read-past-EOF + seek.
	dOffsets := []int64{0, 512, 4096, 65536}
	dSizes := []int{512, 4096, 65536}
	for _, off := range dOffsets {
		for _, size := range dSizes {
			off, size := off, size
			add("rw", fmt.Sprintf("direct-off%d-len%d", off, size), func(t *T) error {
				data := fill(size, byte(size))
				f, err := t.P.Open(t.path("d"), guestos.OCreate|guestos.ORdwr|guestos.ODirect, 0o644)
				if err != nil {
					return err
				}
				defer f.Close()
				if _, err := f.WriteAt(data, off); err != nil {
					return err
				}
				got := make([]byte, size)
				if _, err := f.ReadAt(got, off); err != nil {
					return err
				}
				for i := range got {
					if got[i] != data[i] {
						return fmt.Errorf("direct byte %d mismatch", i)
					}
				}
				return nil
			})
		}
	}
	// Mixed buffered/direct coherence (12), EOF handling (12),
	// append (6), seek semantics (6).
	for i := 0; i < 12; i++ {
		i := i
		add("rw", fmt.Sprintf("coherence-%d", i), func(t *T) error {
			data := fill(4096, byte(i))
			fb, err := t.P.Open(t.path("c"), guestos.OCreate|guestos.ORdwr, 0o644)
			if err != nil {
				return err
			}
			if _, err := fb.WriteAt(data, int64(i)*4096); err != nil {
				return err
			}
			if err := fb.Fsync(); err != nil { // flush so direct sees it
				return err
			}
			fd, err := t.P.Open(t.path("c"), guestos.ORdonly|guestos.ODirect, 0)
			if err != nil {
				return err
			}
			got := make([]byte, 4096)
			if _, err := fd.ReadAt(got, int64(i)*4096); err != nil {
				return err
			}
			for j := range got {
				if got[j] != data[j] {
					return fmt.Errorf("direct read sees stale byte %d", j)
				}
			}
			return nil
		})
	}
	for i, sz := range []int{0, 1, 100, 4095, 4096, 10000} {
		sz := sz
		add("rw", fmt.Sprintf("eof-read-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), fill(sz, 3)); err != nil {
				return err
			}
			f, err := t.P.Open(t.path("f"), guestos.ORdonly, 0)
			if err != nil {
				return err
			}
			buf := make([]byte, 64)
			n, err := f.ReadAt(buf, int64(sz))
			if err != nil {
				return err
			}
			return expect(n == 0, "read %d bytes past EOF", n)
		})
		add("rw", fmt.Sprintf("eof-short-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), fill(sz, 5)); err != nil {
				return err
			}
			f, err := t.P.Open(t.path("f"), guestos.ORdonly, 0)
			if err != nil {
				return err
			}
			buf := make([]byte, sz+64)
			n, err := f.ReadAt(buf, 0)
			if err != nil {
				return err
			}
			return expect(n == sz, "short read %d want %d", n, sz)
		})
	}
	for i := 0; i < 6; i++ {
		i := i
		add("rw", fmt.Sprintf("append-%d", i), func(t *T) error {
			f, err := t.P.Open(t.path("a"), guestos.OCreate|guestos.OWronly|guestos.OAppend, 0o644)
			if err != nil {
				return err
			}
			var want []byte
			for j := 0; j <= i; j++ {
				chunk := fill(100+j, byte(j))
				if _, err := f.Write(chunk); err != nil {
					return err
				}
				want = append(want, chunk...)
			}
			f.Close()
			return readBack(t, t.path("a"), want)
		})
	}
	for i, tc := range []struct {
		whence int
		off    int64
		want   int64
	}{{0, 100, 100}, {1, 50, 150}, {2, -10, 4086}, {0, 0, 0}, {2, 0, 4096}, {1, 0, 4096}} {
		tc := tc
		add("rw", fmt.Sprintf("seek-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("s"), fill(4096, 9)); err != nil {
				return err
			}
			f, err := t.P.Open(t.path("s"), guestos.ORdwr, 0)
			if err != nil {
				return err
			}
			if tc.whence == 1 {
				if _, err := f.Seek(100, 0); err != nil {
					return err
				}
			}
			pos, err := f.Seek(tc.off, tc.whence)
			if err != nil {
				return err
			}
			want := tc.want
			if tc.whence == 1 {
				want = 100 + tc.off
			}
			return expect(pos == want, "seek pos %d want %d", pos, want)
		})
	}
}

// addSparseTests: 30 hole semantics tests.
func addSparseTests(add addFn) {
	holes := []int64{4096, 65536, 1 << 20, 3 << 20, 10 << 20}
	for i, hole := range holes {
		hole := hole
		add("sparse", fmt.Sprintf("hole-%d", i), func(t *T) error {
			f, err := t.P.Open(t.path("sp"), guestos.OCreate|guestos.ORdwr, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			tail := fill(512, 7)
			if _, err := f.WriteAt(tail, hole); err != nil {
				return err
			}
			// The hole reads as zeros.
			buf := make([]byte, 512)
			if _, err := f.ReadAt(buf, hole/2); err != nil {
				return err
			}
			for j, b := range buf {
				if b != 0 {
					return fmt.Errorf("hole byte %d = %#x", j, b)
				}
			}
			got := make([]byte, 512)
			if _, err := f.ReadAt(got, hole); err != nil {
				return err
			}
			for j := range got {
				if got[j] != tail[j] {
					return fmt.Errorf("tail byte %d mismatch", j)
				}
			}
			st, _ := t.P.Stat(t.path("sp"))
			return expect(st.Size == hole+512, "size %d", st.Size)
		})
		add("sparse", fmt.Sprintf("hole-fill-%d", i), func(t *T) error {
			f, err := t.P.Open(t.path("sp"), guestos.OCreate|guestos.ORdwr, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{1}, hole); err != nil {
				return err
			}
			// Filling part of the hole later must not disturb the
			// tail byte; keep the fill strictly inside the hole.
			fillLen := int(hole / 2)
			if fillLen > 4096 {
				fillLen = 4096
			}
			mid := fill(fillLen, 8)
			if _, err := f.WriteAt(mid, hole/4); err != nil {
				return err
			}
			got := make([]byte, fillLen)
			if _, err := f.ReadAt(got, hole/4); err != nil {
				return err
			}
			for j := range got {
				if got[j] != mid[j] {
					return fmt.Errorf("mid byte %d", j)
				}
			}
			one := make([]byte, 1)
			if _, err := f.ReadAt(one, hole); err != nil {
				return err
			}
			return expect(one[0] == 1, "tail clobbered")
		})
		add("sparse", fmt.Sprintf("hole-sync-%d", i), func(t *T) error {
			f, err := t.P.Open(t.path("sp"), guestos.OCreate|guestos.ORdwr, 0o644)
			if err != nil {
				return err
			}
			if _, err := f.WriteAt([]byte{9}, hole); err != nil {
				return err
			}
			if err := f.Fsync(); err != nil {
				return err
			}
			f.Close()
			got, err := t.P.ReadFile(t.path("sp"))
			if err != nil {
				return err
			}
			if int64(len(got)) != hole+1 {
				return fmt.Errorf("size after sync %d", len(got))
			}
			return expect(got[hole] == 9, "data after sync")
		})
	}
	// 15 sparse block accounting tests.
	for i := 0; i < 15; i++ {
		i := i
		add("sparse", fmt.Sprintf("accounting-%d", i), func(t *T) error {
			before, err := t.P.Statfs(t.Dir)
			if err != nil {
				return err
			}
			f, err := t.P.Open(t.path("sp"), guestos.OCreate|guestos.OWronly, 0o644)
			if err != nil {
				return err
			}
			if _, err := f.WriteAt([]byte{1}, int64(i+1)<<20); err != nil {
				return err
			}
			if err := f.Fsync(); err != nil {
				return err
			}
			f.Close()
			after, err := t.P.Statfs(t.Dir)
			if err != nil {
				return err
			}
			used := before.BlocksFree - after.BlocksFree
			return expect(used <= 8, "sparse file of %d MiB hole used %d blocks", i+1, used)
		})
	}
}

// addTruncateTests: 48 tests.
func addTruncateTests(add addFn) {
	sizes := []int64{0, 1, 511, 512, 4095, 4096, 4097, 100000}
	for _, from := range []int64{0, 4096, 100000} {
		for _, to := range sizes {
			from, to := from, to
			add("truncate", fmt.Sprintf("from%d-to%d", from, to), func(t *T) error {
				if err := writeAll(t, t.path("f"), fill(int(from), 0xAA)); err != nil {
					return err
				}
				if err := t.P.Truncate(t.path("f"), to); err != nil {
					return err
				}
				got, err := t.P.ReadFile(t.path("f"))
				if err != nil {
					return err
				}
				if int64(len(got)) != to {
					return fmt.Errorf("size %d want %d", len(got), to)
				}
				limit := from
				if to < from {
					limit = to
				}
				for i := int64(0); i < limit; i++ {
					if got[i] != 0xAA+byte(i*7) {
						return fmt.Errorf("kept byte %d corrupted", i)
					}
				}
				for i := limit; i < to; i++ {
					if got[i] != 0 {
						return fmt.Errorf("extended byte %d = %#x, want 0", i, got[i])
					}
				}
				return nil
			})
		}
	}
	// 24 grow-shrink-grow cycles exercising stale-tail exposure.
	for i := 0; i < 24; i++ {
		i := i
		add("truncate", fmt.Sprintf("cycle-%d", i), func(t *T) error {
			path := t.path("cyc")
			if err := writeAll(t, path, fill(4096, 0xFF)); err != nil {
				return err
			}
			cut := int64(i*150 + 10)
			if err := t.P.Truncate(path, cut); err != nil {
				return err
			}
			if err := t.P.Truncate(path, 4096); err != nil {
				return err
			}
			got, err := t.P.ReadFile(path)
			if err != nil {
				return err
			}
			for j := cut; j < 4096; j++ {
				if got[j] != 0 {
					return fmt.Errorf("stale byte %#x at %d after regrow past cut %d", got[j], j, cut)
				}
			}
			return nil
		})
	}
}

// addRenameTests: 40 tests.
func addRenameTests(add addFn) {
	add("rename", "simple", func(t *T) error {
		if err := writeAll(t, t.path("a"), []byte("x")); err != nil {
			return err
		}
		if err := t.P.Rename(t.path("a"), t.path("b")); err != nil {
			return err
		}
		if _, err := t.P.Stat(t.path("a")); err != fserr.ErrNotFound {
			return fmt.Errorf("source still present: %v", err)
		}
		return readBack(t, t.path("b"), []byte("x"))
	})
	add("rename", "replace-file", func(t *T) error {
		if err := writeAll(t, t.path("a"), []byte("A")); err != nil {
			return err
		}
		if err := writeAll(t, t.path("b"), []byte("B")); err != nil {
			return err
		}
		if err := t.P.Rename(t.path("a"), t.path("b")); err != nil {
			return err
		}
		return readBack(t, t.path("b"), []byte("A"))
	})
	add("rename", "onto-self", func(t *T) error {
		if err := writeAll(t, t.path("a"), []byte("same")); err != nil {
			return err
		}
		if err := t.P.Rename(t.path("a"), t.path("a")); err != nil {
			return err
		}
		return readBack(t, t.path("a"), []byte("same"))
	})
	add("rename", "missing-source", func(t *T) error {
		return expectErr(t.P.Rename(t.path("nope"), t.path("b")), fserr.ErrNotFound, "rename missing")
	})
	add("rename", "dir-simple", func(t *T) error {
		if err := t.P.Mkdir(t.path("d1"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("d1/inner"), []byte("i")); err != nil {
			return err
		}
		if err := t.P.Rename(t.path("d1"), t.path("d2")); err != nil {
			return err
		}
		return readBack(t, t.path("d2/inner"), []byte("i"))
	})
	add("rename", "dir-over-empty-dir", func(t *T) error {
		if err := t.P.Mkdir(t.path("src"), 0o755); err != nil {
			return err
		}
		if err := t.P.Mkdir(t.path("dst"), 0o755); err != nil {
			return err
		}
		return t.P.Rename(t.path("src"), t.path("dst"))
	})
	add("rename", "dir-over-nonempty-dir", func(t *T) error {
		if err := t.P.Mkdir(t.path("src"), 0o755); err != nil {
			return err
		}
		if err := t.P.Mkdir(t.path("dst"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("dst/keep"), nil); err != nil {
			return err
		}
		return expectErr(t.P.Rename(t.path("src"), t.path("dst")), fserr.ErrNotEmpty, "dir over nonempty")
	})
	add("rename", "file-over-dir", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		return expectErr(t.P.Rename(t.path("f"), t.path("d")), fserr.ErrIsDir, "file over dir")
	})
	add("rename", "dir-over-file", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		return expectErr(t.P.Rename(t.path("d"), t.path("f")), fserr.ErrNotDir, "dir over file")
	})
	add("rename", "cross-directory", func(t *T) error {
		if err := t.P.Mkdir(t.path("from"), 0o755); err != nil {
			return err
		}
		if err := t.P.Mkdir(t.path("to"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("from/f"), []byte("mv")); err != nil {
			return err
		}
		if err := t.P.Rename(t.path("from/f"), t.path("to/f")); err != nil {
			return err
		}
		return readBack(t, t.path("to/f"), []byte("mv"))
	})
	// 30 parameterised chains: rename sequences preserve content and
	// link state.
	for i := 0; i < 30; i++ {
		i := i
		add("rename", fmt.Sprintf("chain-%d", i), func(t *T) error {
			want := fill(200+i*13, byte(i))
			cur := t.path("n0")
			if err := writeAll(t, cur, want); err != nil {
				return err
			}
			for hop := 1; hop <= (i%5)+2; hop++ {
				next := t.path(fmt.Sprintf("n%d", hop))
				if err := t.P.Rename(cur, next); err != nil {
					return err
				}
				cur = next
			}
			if err := readBack(t, cur, want); err != nil {
				return err
			}
			st, err := t.P.Stat(cur)
			if err != nil {
				return err
			}
			return expect(st.Nlink == 1, "nlink %d after chain", st.Nlink)
		})
	}
}

// addLinkTests: 50 hard/symlink tests.
func addLinkTests(add addFn) {
	add("link", "hard-basic", func(t *T) error {
		if err := writeAll(t, t.path("a"), []byte("shared")); err != nil {
			return err
		}
		if err := t.P.Link(t.path("a"), t.path("b")); err != nil {
			return err
		}
		sa, _ := t.P.Stat(t.path("a"))
		sb, _ := t.P.Stat(t.path("b"))
		if sa.Ino != sb.Ino {
			return fmt.Errorf("different inodes %d %d", sa.Ino, sb.Ino)
		}
		return expect(sa.Nlink == 2, "nlink %d", sa.Nlink)
	})
	add("link", "hard-write-visible", func(t *T) error {
		if err := writeAll(t, t.path("a"), []byte("old")); err != nil {
			return err
		}
		if err := t.P.Link(t.path("a"), t.path("b")); err != nil {
			return err
		}
		if err := writeAll(t, t.path("a"), []byte("new")); err != nil {
			return err
		}
		return readBack(t, t.path("b"), []byte("new"))
	})
	add("link", "hard-unlink-one", func(t *T) error {
		if err := writeAll(t, t.path("a"), []byte("keep")); err != nil {
			return err
		}
		if err := t.P.Link(t.path("a"), t.path("b")); err != nil {
			return err
		}
		if err := t.P.Unlink(t.path("a")); err != nil {
			return err
		}
		return readBack(t, t.path("b"), []byte("keep"))
	})
	add("link", "hard-to-dir-rejected", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		return expect(t.P.Link(t.path("d"), t.path("dl")) != nil, "hard link to dir accepted")
	})
	add("link", "hard-existing-target", func(t *T) error {
		if err := writeAll(t, t.path("a"), nil); err != nil {
			return err
		}
		if err := writeAll(t, t.path("b"), nil); err != nil {
			return err
		}
		return expectErr(t.P.Link(t.path("a"), t.path("b")), fserr.ErrExists, "link onto existing")
	})
	// 15 hard-link count matrices.
	for n := 2; n <= 16; n++ {
		n := n
		add("link", fmt.Sprintf("hard-count-%d", n), func(t *T) error {
			if err := writeAll(t, t.path("base"), []byte("x")); err != nil {
				return err
			}
			for i := 1; i < n; i++ {
				if err := t.P.Link(t.path("base"), t.path(fmt.Sprintf("l%d", i))); err != nil {
					return err
				}
			}
			st, _ := t.P.Stat(t.path("base"))
			if st.Nlink != uint32(n) {
				return fmt.Errorf("nlink %d want %d", st.Nlink, n)
			}
			for i := 1; i < n; i++ {
				if err := t.P.Unlink(t.path(fmt.Sprintf("l%d", i))); err != nil {
					return err
				}
			}
			st, _ = t.P.Stat(t.path("base"))
			return expect(st.Nlink == 1, "nlink %d after unlinks", st.Nlink)
		})
	}
	// Symlinks: 30 tests.
	add("link", "sym-basic", func(t *T) error {
		if err := writeAll(t, t.path("target"), []byte("via-sym")); err != nil {
			return err
		}
		if err := t.P.Symlink(t.path("target"), t.path("ln")); err != nil {
			return err
		}
		return readBack(t, t.path("ln"), []byte("via-sym"))
	})
	add("link", "sym-readlink", func(t *T) error {
		if err := t.P.Symlink("/absolute/elsewhere", t.path("ln")); err != nil {
			return err
		}
		got, err := t.P.Readlink(t.path("ln"))
		if err != nil {
			return err
		}
		return expect(got == "/absolute/elsewhere", "target %q", got)
	})
	add("link", "sym-dangling", func(t *T) error {
		if err := t.P.Symlink(t.path("gone"), t.path("ln")); err != nil {
			return err
		}
		_, err := t.P.Open(t.path("ln"), guestos.ORdonly, 0)
		return expectErr(err, fserr.ErrNotFound, "open dangling symlink")
	})
	add("link", "sym-lstat", func(t *T) error {
		if err := writeAll(t, t.path("t"), nil); err != nil {
			return err
		}
		if err := t.P.Symlink(t.path("t"), t.path("ln")); err != nil {
			return err
		}
		st, err := t.P.Lstat(t.path("ln"))
		if err != nil {
			return err
		}
		return expect(st.Mode&simplefs.ModeTypeMask == simplefs.ModeSymlink, "lstat mode %#x", st.Mode)
	})
	add("link", "sym-relative", func(t *T) error {
		if err := t.P.Mkdir(t.path("sub"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("sub/real"), []byte("rel")); err != nil {
			return err
		}
		if err := t.P.Symlink("real", t.path("sub/ln")); err != nil {
			return err
		}
		return readBack(t, t.path("sub/ln"), []byte("rel"))
	})
	add("link", "sym-loop", func(t *T) error {
		if err := t.P.Symlink(t.path("b"), t.path("a")); err != nil {
			return err
		}
		if err := t.P.Symlink(t.path("a"), t.path("b")); err != nil {
			return err
		}
		_, err := t.P.Open(t.path("a"), guestos.ORdonly, 0)
		return expectErr(err, fserr.ErrTooManyLinks, "symlink loop")
	})
	add("link", "sym-to-dir", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("d/f"), []byte("through")); err != nil {
			return err
		}
		if err := t.P.Symlink(t.path("d"), t.path("ln")); err != nil {
			return err
		}
		return readBack(t, t.path("ln/f"), []byte("through"))
	})
	add("link", "sym-unlink-keeps-target", func(t *T) error {
		if err := writeAll(t, t.path("t"), []byte("stay")); err != nil {
			return err
		}
		if err := t.P.Symlink(t.path("t"), t.path("ln")); err != nil {
			return err
		}
		if err := t.P.Unlink(t.path("ln")); err != nil {
			return err
		}
		return readBack(t, t.path("t"), []byte("stay"))
	})
	// 22 target-length matrix.
	for i := 0; i < 22; i++ {
		i := i
		add("link", fmt.Sprintf("sym-target-len-%d", i), func(t *T) error {
			target := "/p"
			for j := 0; j < i*3; j++ {
				target += "x"
			}
			if err := t.P.Symlink(target, t.path("ln")); err != nil {
				return err
			}
			got, err := t.P.Readlink(t.path("ln"))
			if err != nil {
				return err
			}
			return expect(got == target, "len %d target mismatch", len(target))
		})
	}
}
