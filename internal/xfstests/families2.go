package xfstests

import (
	"fmt"

	"vmsh/internal/fserr"
	"vmsh/internal/guestos"
)

// addDirTests: 56 directory semantics tests.
func addDirTests(add addFn) {
	add("dir", "mkdir-rmdir", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		return t.P.Rmdir(t.path("d"))
	})
	add("dir", "rmdir-nonempty", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("d/f"), nil); err != nil {
			return err
		}
		return expectErr(t.P.Rmdir(t.path("d")), fserr.ErrNotEmpty, "rmdir nonempty")
	})
	add("dir", "rmdir-file", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		return expectErr(t.P.Rmdir(t.path("f")), fserr.ErrNotDir, "rmdir file")
	})
	add("dir", "unlink-dir", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		return expectErr(t.P.Unlink(t.path("d")), fserr.ErrIsDir, "unlink dir")
	})
	add("dir", "mkdir-exists", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		return expectErr(t.P.Mkdir(t.path("d"), 0o755), fserr.ErrExists, "mkdir exists")
	})
	add("dir", "nlink-counts", func(t *T) error {
		base, err := t.P.Stat(t.Dir)
		if err != nil {
			return err
		}
		for i := 0; i < 5; i++ {
			if err := t.P.Mkdir(t.path(fmt.Sprintf("s%d", i)), 0o755); err != nil {
				return err
			}
		}
		st, _ := t.P.Stat(t.Dir)
		if st.Nlink != base.Nlink+5 {
			return fmt.Errorf("nlink %d want %d", st.Nlink, base.Nlink+5)
		}
		for i := 0; i < 5; i++ {
			if err := t.P.Rmdir(t.path(fmt.Sprintf("s%d", i))); err != nil {
				return err
			}
		}
		st, _ = t.P.Stat(t.Dir)
		return expect(st.Nlink == base.Nlink, "nlink %d after rmdirs, want %d", st.Nlink, base.Nlink)
	})
	// Deep nesting: 10 depths.
	for _, depth := range []int{2, 3, 4, 6, 8, 10, 12, 16, 20, 24} {
		depth := depth
		add("dir", fmt.Sprintf("nest-%d", depth), func(t *T) error {
			path := t.Dir
			for d := 0; d < depth; d++ {
				path += fmt.Sprintf("/lvl%d", d)
				if err := t.P.Mkdir(path, 0o755); err != nil {
					return err
				}
			}
			if err := writeAll(t, path+"/leaf", []byte("deep")); err != nil {
				return err
			}
			return readBack(t, path+"/leaf", []byte("deep"))
		})
	}
	// Listing sizes: 10 counts spanning multiple dir blocks.
	for _, count := range []int{1, 5, 15, 16, 17, 31, 33, 64, 100, 150} {
		count := count
		add("dir", fmt.Sprintf("list-%d", count), func(t *T) error {
			for i := 0; i < count; i++ {
				if err := writeAll(t, t.path(fmt.Sprintf("e%03d", i)), nil); err != nil {
					return err
				}
			}
			ents, err := t.P.ReadDir(t.Dir)
			if err != nil {
				return err
			}
			if len(ents) != count {
				return fmt.Errorf("listed %d want %d", len(ents), count)
			}
			seen := map[string]bool{}
			for _, e := range ents {
				if seen[e.Name] {
					return fmt.Errorf("duplicate entry %s", e.Name)
				}
				seen[e.Name] = true
			}
			return nil
		})
	}
	// Slot reuse after deletion: 10 patterns.
	for i := 0; i < 10; i++ {
		i := i
		add("dir", fmt.Sprintf("slot-reuse-%d", i), func(t *T) error {
			const n = 40
			for j := 0; j < n; j++ {
				if err := writeAll(t, t.path(fmt.Sprintf("f%d", j)), nil); err != nil {
					return err
				}
			}
			for j := i % 7; j < n; j += (i % 5) + 2 {
				if err := t.P.Unlink(t.path(fmt.Sprintf("f%d", j))); err != nil {
					return err
				}
			}
			if err := writeAll(t, t.path("reused"), []byte("r")); err != nil {
				return err
			}
			return readBack(t, t.path("reused"), []byte("r"))
		})
	}
	// Listing reflects unlinks/renames: 10.
	for i := 0; i < 10; i++ {
		i := i
		add("dir", fmt.Sprintf("list-consistency-%d", i), func(t *T) error {
			for j := 0; j < 10; j++ {
				if err := writeAll(t, t.path(fmt.Sprintf("c%d", j)), nil); err != nil {
					return err
				}
			}
			if err := t.P.Unlink(t.path(fmt.Sprintf("c%d", i))); err != nil {
				return err
			}
			if err := t.P.Rename(t.path(fmt.Sprintf("c%d", (i+1)%10)), t.path("renamed")); err != nil {
				return err
			}
			ents, err := t.P.ReadDir(t.Dir)
			if err != nil {
				return err
			}
			if len(ents) != 10-1 {
				return fmt.Errorf("%d entries", len(ents))
			}
			for _, e := range ents {
				if e.Name == fmt.Sprintf("c%d", i) {
					return fmt.Errorf("unlinked entry still listed")
				}
			}
			return nil
		})
	}
	// Types in listings: 10.
	for i := 0; i < 10; i++ {
		i := i
		add("dir", fmt.Sprintf("list-types-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
				return err
			}
			if err := t.P.Symlink("f", t.path("l")); err != nil {
				return err
			}
			ents, err := t.P.ReadDir(t.Dir)
			if err != nil {
				return err
			}
			types := map[string]uint32{}
			for _, e := range ents {
				types[e.Name] = e.Type
			}
			_ = i
			if types["f"] == types["d"] || types["d"] == types["l"] || types["f"] == types["l"] {
				return fmt.Errorf("entry types not distinguished: %v", types)
			}
			return nil
		})
	}
}

// addAttrTests: 48 permission/ownership/time tests.
func addAttrTests(add addFn) {
	// chmod matrix: 12.
	for _, m := range []uint32{0, 0o400, 0o200, 0o100, 0o777, 0o755, 0o644, 0o600, 0o4755, 0o1777, 0o640, 0o060} {
		m := m
		add("attr", fmt.Sprintf("chmod-%04o", m), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Chmod(t.path("f"), m); err != nil {
				return err
			}
			st, _ := t.P.Stat(t.path("f"))
			return expect(st.Mode&0o7777 == m&0o7777 || st.Mode&0o777 == m&0o777,
				"mode %04o want %04o", st.Mode&0o7777, m)
		})
	}
	// chown matrix: 12.
	for i, ids := range [][2]uint32{{0, 0}, {1, 1}, {1000, 1000}, {1000, 100}, {65534, 65534},
		{7, 8}, {8, 7}, {42, 0}, {0, 42}, {99, 99}, {500, 501}, {12345, 54321}} {
		ids := ids
		add("attr", fmt.Sprintf("chown-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Chown(t.path("f"), ids[0], ids[1]); err != nil {
				return err
			}
			st, _ := t.P.Stat(t.path("f"))
			return expect(st.UID == ids[0] && st.GID == ids[1], "owner %d:%d want %d:%d",
				st.UID, st.GID, ids[0], ids[1])
		})
	}
	// utimes matrix: 12.
	for i, times := range [][2]uint64{{0, 0}, {1, 1}, {1000, 2000}, {2000, 1000},
		{1 << 31, 1 << 31}, {3, 0}, {0, 3}, {42, 42}, {7, 9}, {11, 13}, {100000, 1}, {1, 100000}} {
		times := times
		add("attr", fmt.Sprintf("utimes-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Utimes(t.path("f"), times[0], times[1]); err != nil {
				return err
			}
			st, _ := t.P.Stat(t.path("f"))
			return expect(st.Atime == times[0] && st.Mtime == times[1],
				"times %d/%d want %d/%d", st.Atime, st.Mtime, times[0], times[1])
		})
	}
	// Attribute persistence through rename/link: 12.
	for i := 0; i < 12; i++ {
		i := i
		add("attr", fmt.Sprintf("attrs-survive-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Chmod(t.path("f"), 0o640); err != nil {
				return err
			}
			if err := t.P.Chown(t.path("f"), uint32(i), uint32(i)); err != nil {
				return err
			}
			if err := t.P.Rename(t.path("f"), t.path("g")); err != nil {
				return err
			}
			st, err := t.P.Stat(t.path("g"))
			if err != nil {
				return err
			}
			return expect(st.Mode&0o777 == 0o640 && st.UID == uint32(i),
				"attrs lost across rename: %04o %d", st.Mode&0o777, st.UID)
		})
	}
}

// addPersistenceTests: 30 sync + remount tests.
func addPersistenceTests(add addFn) {
	for i := 0; i < 10; i++ {
		i := i
		add("persist", fmt.Sprintf("data-%d", i), func(t *T) error {
			want := fill(1000*(i+1), byte(i))
			if err := writeAll(t, t.path("f"), want); err != nil {
				return err
			}
			if err := t.P.Sync(); err != nil {
				return err
			}
			if err := t.Env.Remount(); err != nil {
				return err
			}
			t.P = t.Env.NewProc()
			return readBack(t, t.path("f"), want)
		})
	}
	for i := 0; i < 10; i++ {
		i := i
		add("persist", fmt.Sprintf("tree-%d", i), func(t *T) error {
			for d := 0; d <= i%4; d++ {
				dir := t.path(fmt.Sprintf("d%d", d))
				if err := t.P.Mkdir(dir, 0o755); err != nil {
					return err
				}
				if err := writeAll(t, dir+"/f", []byte{byte(d)}); err != nil {
					return err
				}
			}
			if err := t.P.Sync(); err != nil {
				return err
			}
			if err := t.Env.Remount(); err != nil {
				return err
			}
			t.P = t.Env.NewProc()
			for d := 0; d <= i%4; d++ {
				if err := readBack(t, t.path(fmt.Sprintf("d%d/f", d)), []byte{byte(d)}); err != nil {
					return err
				}
			}
			return nil
		})
	}
	for i := 0; i < 10; i++ {
		i := i
		add("persist", fmt.Sprintf("meta-%d", i), func(t *T) error {
			if err := writeAll(t, t.path("f"), nil); err != nil {
				return err
			}
			if err := t.P.Chmod(t.path("f"), 0o600); err != nil {
				return err
			}
			if err := t.P.Chown(t.path("f"), uint32(i+1), uint32(i+2)); err != nil {
				return err
			}
			if err := t.P.Symlink("f", t.path("ln")); err != nil {
				return err
			}
			if err := t.P.Sync(); err != nil {
				return err
			}
			if err := t.Env.Remount(); err != nil {
				return err
			}
			t.P = t.Env.NewProc()
			st, err := t.P.Stat(t.path("f"))
			if err != nil {
				return err
			}
			if st.Mode&0o777 != 0o600 || st.UID != uint32(i+1) {
				return fmt.Errorf("metadata lost: %04o %d", st.Mode&0o777, st.UID)
			}
			target, err := t.P.Readlink(t.path("ln"))
			if err != nil || target != "f" {
				return fmt.Errorf("symlink lost: %q %v", target, err)
			}
			return nil
		})
	}
}

// addStatfsTests: 16 accounting tests.
func addStatfsTests(add addFn) {
	for i := 0; i < 8; i++ {
		i := i
		add("statfs", fmt.Sprintf("blocks-%d", i), func(t *T) error {
			before, err := t.P.Statfs(t.Dir)
			if err != nil {
				return err
			}
			size := int64(64*1024) * int64(i+1)
			if err := writeAll(t, t.path("f"), fill(int(size), 1)); err != nil {
				return err
			}
			if err := t.P.Sync(); err != nil {
				return err
			}
			after, _ := t.P.Statfs(t.Dir)
			used := int64(before.BlocksFree-after.BlocksFree) * 4096
			if used < size || used > size+64*1024 {
				return fmt.Errorf("used %d bytes for a %d byte file", used, size)
			}
			if err := t.P.Unlink(t.path("f")); err != nil {
				return err
			}
			final, _ := t.P.Statfs(t.Dir)
			return expect(final.BlocksFree >= before.BlocksFree-2,
				"blocks leaked: %d -> %d", before.BlocksFree, final.BlocksFree)
		})
	}
	for i := 0; i < 8; i++ {
		i := i
		add("statfs", fmt.Sprintf("inodes-%d", i), func(t *T) error {
			before, err := t.P.Statfs(t.Dir)
			if err != nil {
				return err
			}
			n := (i + 1) * 3
			for j := 0; j < n; j++ {
				if err := writeAll(t, t.path(fmt.Sprintf("f%d", j)), nil); err != nil {
					return err
				}
			}
			mid, _ := t.P.Statfs(t.Dir)
			if before.InodesFree-mid.InodesFree != uint64(n) {
				return fmt.Errorf("inode accounting: %d consumed for %d files",
					before.InodesFree-mid.InodesFree, n)
			}
			for j := 0; j < n; j++ {
				if err := t.P.Unlink(t.path(fmt.Sprintf("f%d", j))); err != nil {
					return err
				}
			}
			after, _ := t.P.Statfs(t.Dir)
			return expect(after.InodesFree == before.InodesFree, "inodes leaked")
		})
	}
}

// addLargeFileTests: 15 tests across the direct/indirect/double
// indirect mapping boundaries.
func addLargeFileTests(add addFn) {
	// simplefs boundaries: direct ends at 48 KiB, single indirect at
	// 48 KiB + 4 MiB.
	probes := []int64{
		47 * 1024, 48 * 1024, 49 * 1024, // direct/indirect edge
		2 << 20, 4<<20 + 48*1024 - 4096, 4<<20 + 48*1024, // indirect edge
		5 << 20, 6 << 20, 8 << 20,
		10 << 20, 12 << 20, 16 << 20,
		20 << 20, 24 << 20, 30 << 20,
	}
	for i, probe := range probes {
		probe := probe
		add("largefile", fmt.Sprintf("boundary-%d", i), func(t *T) error {
			f, err := t.P.Open(t.path("big"), guestos.OCreate|guestos.ORdwr, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			want := fill(8192, byte(i))
			if _, err := f.WriteAt(want, probe); err != nil {
				return err
			}
			if err := f.Fsync(); err != nil {
				return err
			}
			got := make([]byte, len(want))
			if _, err := f.ReadAt(got, probe); err != nil {
				return err
			}
			for j := range got {
				if got[j] != want[j] {
					return fmt.Errorf("byte %d at boundary %d", j, probe)
				}
			}
			return nil
		})
	}
}

// addPathTests: 30 path resolution tests.
func addPathTests(add addFn) {
	add("path", "dot-components", func(t *T) error {
		if err := writeAll(t, t.path("f"), []byte("dots")); err != nil {
			return err
		}
		return readBack(t, t.Dir+"/./f", []byte("dots"))
	})
	add("path", "dotdot", func(t *T) error {
		if err := t.P.Mkdir(t.path("sub"), 0o755); err != nil {
			return err
		}
		if err := writeAll(t, t.path("f"), []byte("up")); err != nil {
			return err
		}
		return readBack(t, t.path("sub/../f"), []byte("up"))
	})
	add("path", "double-slash", func(t *T) error {
		if err := writeAll(t, t.path("f"), []byte("ds")); err != nil {
			return err
		}
		return readBack(t, t.Dir+"//f", []byte("ds"))
	})
	add("path", "trailing-slash-dir", func(t *T) error {
		if err := t.P.Mkdir(t.path("d"), 0o755); err != nil {
			return err
		}
		_, err := t.P.Stat(t.path("d") + "/")
		return err
	})
	add("path", "lookup-through-file", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		_, err := t.P.Stat(t.path("f/child"))
		return expect(err != nil, "resolved a path through a file")
	})
	// Relative path + cwd tests: 10.
	for i := 0; i < 10; i++ {
		i := i
		add("path", fmt.Sprintf("cwd-%d", i), func(t *T) error {
			sub := t.path(fmt.Sprintf("wd%d", i))
			if err := t.P.Mkdir(sub, 0o755); err != nil {
				return err
			}
			t.P.CWD = sub
			if err := t.P.WriteFile("rel.txt", []byte("relative"), 0o644); err != nil {
				return err
			}
			got, err := t.P.ReadFile(sub + "/rel.txt")
			if err != nil || string(got) != "relative" {
				return fmt.Errorf("relative write: %q %v", got, err)
			}
			return nil
		})
	}
	// Symlink chains of increasing depth: 15.
	for depth := 1; depth <= 15; depth++ {
		depth := depth
		add("path", fmt.Sprintf("symchain-%d", depth), func(t *T) error {
			if err := writeAll(t, t.path("real"), []byte("chain")); err != nil {
				return err
			}
			prev := t.path("real")
			for d := 0; d < depth; d++ {
				ln := t.path(fmt.Sprintf("l%d", d))
				if err := t.P.Symlink(prev, ln); err != nil {
					return err
				}
				prev = ln
			}
			return readBack(t, prev, []byte("chain"))
		})
	}
}

// addInterleavedTests: 40 multi-file interleaving tests (the closest
// single-threaded analogue of xfstests' concurrent writers).
func addInterleavedTests(add addFn) {
	for i := 0; i < 20; i++ {
		i := i
		add("interleave", fmt.Sprintf("writers-%d", i), func(t *T) error {
			nFiles := (i % 5) + 2
			files := make([]*guestos.File, nFiles)
			for j := range files {
				f, err := t.P.Open(t.path(fmt.Sprintf("w%d", j)), guestos.OCreate|guestos.ORdwr, 0o644)
				if err != nil {
					return err
				}
				files[j] = f
			}
			const rounds = 16
			for r := 0; r < rounds; r++ {
				for j, f := range files {
					chunk := fill(512, byte(j*16+r))
					if _, err := f.WriteAt(chunk, int64(r)*512); err != nil {
						return err
					}
				}
			}
			for j, f := range files {
				for r := 0; r < rounds; r++ {
					got := make([]byte, 512)
					if _, err := f.ReadAt(got, int64(r)*512); err != nil {
						return err
					}
					want := fill(512, byte(j*16+r))
					for b := range got {
						if got[b] != want[b] {
							return fmt.Errorf("file %d round %d byte %d crosstalk", j, r, b)
						}
					}
				}
			}
			return nil
		})
	}
	for i := 0; i < 20; i++ {
		i := i
		add("interleave", fmt.Sprintf("create-delete-%d", i), func(t *T) error {
			live := map[string][]byte{}
			for r := 0; r < 30; r++ {
				name := t.path(fmt.Sprintf("cd%d", r%((i%6)+3)))
				switch r % 3 {
				case 0, 1:
					data := fill(256+r*17, byte(r))
					if err := writeAll(t, name, data); err != nil {
						return err
					}
					live[name] = data
				case 2:
					if _, ok := live[name]; ok {
						if err := t.P.Unlink(name); err != nil {
							return err
						}
						delete(live, name)
					}
				}
			}
			for name, want := range live {
				if err := readBack(t, name, want); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// addEdgeTests: 30 error and limit cases.
func addEdgeTests(add addFn) {
	add("edge", "name-max-ok", func(t *T) error {
		name := ""
		for i := 0; i < 200; i++ {
			name += "n"
		}
		return writeAll(t, t.path(name), []byte("long"))
	})
	add("edge", "name-too-long", func(t *T) error {
		name := ""
		for i := 0; i < 260; i++ {
			name += "n"
		}
		err := writeAll(t, t.path(name), nil)
		return expect(err != nil, "overlong name accepted")
	})
	add("edge", "unlink-missing", func(t *T) error {
		return expectErr(t.P.Unlink(t.path("ghost")), fserr.ErrNotFound, "unlink missing")
	})
	add("edge", "stat-missing", func(t *T) error {
		_, err := t.P.Stat(t.path("ghost"))
		return expectErr(err, fserr.ErrNotFound, "stat missing")
	})
	add("edge", "readdir-file", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		_, err := t.P.ReadDir(t.path("f"))
		return expectErr(err, fserr.ErrNotDir, "readdir on file")
	})
	add("edge", "write-dir-fd", func(t *T) error {
		_, err := t.P.Open(t.Dir, guestos.OWronly, 0)
		return expectErr(err, fserr.ErrIsDir, "open dir for writing")
	})
	add("edge", "negative-seek", func(t *T) error {
		f, err := t.P.Open(t.path("f"), guestos.OCreate|guestos.ORdwr, 0o644)
		if err != nil {
			return err
		}
		_, err = f.Seek(-10, 0)
		return expect(err != nil, "negative seek accepted")
	})
	add("edge", "zero-byte-file", func(t *T) error {
		if err := writeAll(t, t.path("z"), nil); err != nil {
			return err
		}
		got, err := t.P.ReadFile(t.path("z"))
		if err != nil {
			return err
		}
		return expect(len(got) == 0, "zero file reads %d bytes", len(got))
	})
	add("edge", "readlink-regular", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		_, err := t.P.Readlink(t.path("f"))
		return expect(err != nil, "readlink on regular file")
	})
	add("edge", "truncate-negative", func(t *T) error {
		if err := writeAll(t, t.path("f"), nil); err != nil {
			return err
		}
		return expect(t.P.Truncate(t.path("f"), -1) != nil, "negative truncate accepted")
	})
	// 20 repeated-operation idempotency/robustness cases.
	for i := 0; i < 20; i++ {
		i := i
		add("edge", fmt.Sprintf("hammer-%d", i), func(t *T) error {
			path := t.path("h")
			for r := 0; r < 10; r++ {
				if err := writeAll(t, path, fill((r+1)*100, byte(i))); err != nil {
					return err
				}
				if err := t.P.Truncate(path, int64(r*50)); err != nil {
					return err
				}
				if r%2 == 0 {
					if err := t.P.Unlink(path); err != nil {
						return err
					}
				}
			}
			return nil
		})
	}
}

// addQuotaTests: 10 tests — 7 structural ones that pass everywhere
// and 3 usage-reporting tests that require the quota subsystem
// (device FUA). The latter are the "three failed test cases ...
// related to quota reporting" of §6.1.
func addQuotaTests(add addFn) {
	for i := 0; i < 7; i++ {
		i := i
		add("quota", fmt.Sprintf("ownership-%d", i), func(t *T) error {
			uid := uint32(100 + i)
			if err := writeAll(t, t.path("q"), fill(8192, 1)); err != nil {
				return err
			}
			if err := t.P.Chown(t.path("q"), uid, uid); err != nil {
				return err
			}
			st, err := t.P.Stat(t.path("q"))
			if err != nil {
				return err
			}
			return expect(st.UID == uid, "uid %d", st.UID)
		})
	}
	report := func(t *T, uid uint32, minBlocks uint64) error {
		rep, err := t.P.QuotaReport(t.Dir)
		if err != nil {
			return fmt.Errorf("quota report: %w", err)
		}
		for _, q := range rep {
			if q.UID == uid {
				if q.Blocks < minBlocks {
					return fmt.Errorf("uid %d reported %d blocks, want >= %d", uid, q.Blocks, minBlocks)
				}
				return nil
			}
		}
		return fmt.Errorf("uid %d missing from quota report", uid)
	}
	add("quota", "report-basic", func(t *T) error {
		if err := writeAll(t, t.path("q"), fill(64*1024, 1)); err != nil {
			return err
		}
		if err := t.P.Chown(t.path("q"), 777, 777); err != nil {
			return err
		}
		if err := t.P.Sync(); err != nil {
			return err
		}
		return report(t, 777, 16)
	})
	add("quota", "report-after-growth", func(t *T) error {
		if err := writeAll(t, t.path("q"), fill(16*1024, 1)); err != nil {
			return err
		}
		if err := t.P.Chown(t.path("q"), 778, 778); err != nil {
			return err
		}
		f, err := t.P.Open(t.path("q"), guestos.OWronly, 0)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(fill(64*1024, 2), 16*1024); err != nil {
			return err
		}
		if err := f.Fsync(); err != nil {
			return err
		}
		return report(t, 778, 20)
	})
	add("quota", "report-chown-moves-usage", func(t *T) error {
		if err := writeAll(t, t.path("q"), fill(32*1024, 1)); err != nil {
			return err
		}
		if err := t.P.Chown(t.path("q"), 779, 779); err != nil {
			return err
		}
		if err := t.P.Chown(t.path("q"), 780, 780); err != nil {
			return err
		}
		if err := t.P.Sync(); err != nil {
			return err
		}
		if err := report(t, 780, 8); err != nil {
			return err
		}
		rep, err := t.P.QuotaReport(t.Dir)
		if err != nil {
			return err
		}
		for _, q := range rep {
			if q.UID == 779 && q.Blocks != 0 {
				return fmt.Errorf("uid 779 still charged %d blocks", q.Blocks)
			}
		}
		return nil
	})
}

// addSkippedFeatureTests: 40 tests probing features this filesystem
// does not claim; every environment skips them, matching §6.1's
// "tests do not apply ... automatically skipped".
func addSkippedFeatureTests(addReq addReqFn) {
	feats := []string{"reflink", "dax", "rtdev", "bigtime", "xattr-security"}
	for i := 0; i < 40; i++ {
		feat := feats[i%len(feats)]
		addReq("featgated", fmt.Sprintf("%s-%d", feat, i), feat, func(t *T) error {
			return fmt.Errorf("feature-gated test executed without support")
		})
	}
}
