package xfstests

import (
	"testing"

	"vmsh/internal/guestos"
	"vmsh/internal/hostsim"
	"vmsh/internal/kvm"
	"vmsh/internal/mem"
	"vmsh/internal/simplefs"
)

func TestSuiteSizeAndStability(t *testing.T) {
	a := Suite()
	if len(a) != SuiteSize {
		t.Fatalf("suite has %d tests, want %d", len(a), SuiteSize)
	}
	b := Suite()
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Name != b[i].Name || a[i].Family != b[i].Family {
			t.Fatalf("test %d not stable across generations", i)
		}
	}
	// IDs are 1..N without gaps.
	for i, tc := range a {
		if tc.ID != i+1 {
			t.Fatalf("test %d has id %d", i, tc.ID)
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	fams := map[string]int{}
	gated := 0
	for _, tc := range Suite() {
		fams[tc.Family]++
		if tc.Requires != "" {
			gated++
		}
	}
	// Exactly three quota-report tests carry the QuotaReport call.
	if fams["quota"] != 10 {
		t.Fatalf("quota family has %d tests", fams["quota"])
	}
	if gated != 40 {
		t.Fatalf("%d feature-gated tests", gated)
	}
	for _, f := range []string{"create", "rw", "sparse", "truncate", "rename",
		"link", "dir", "attr", "persist", "statfs", "largefile", "path",
		"interleave", "edge"} {
		if fams[f] == 0 {
			t.Fatalf("family %s empty", f)
		}
	}
}

// ramEnv builds a lightweight environment over a bare kernel and a
// ram-backed simplefs for corpus self-tests.
func ramEnv(t *testing.T, fua bool) *Env {
	t.Helper()
	h := hostsim.NewHost()
	proc := h.NewProcess("hyp", hostsim.Creds{UID: 1000, Caps: map[hostsim.Capability]bool{}})
	ram := mem.NewPhys(0, 128<<20)
	m, err := proc.AS.MapPhys(0x7f0000000000, ram, "guest-ram")
	if err != nil {
		t.Fatal(err)
	}
	vm, _ := kvm.CreateVM(proc, "xfs")
	vm.AddMemSlotDirect(0, 0, m.HVA, ram)
	vm.NewVCPU()
	k, err := guestos.Boot(guestos.Config{Version: "5.10", Host: h, VM: vm, RAMSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	file := h.CreateFile("xfs.img", 128<<20, true)
	dev := &fuaDev{h: h, file: file, fua: fua}
	if err := simplefs.Mkfs(dev, simplefs.MkfsOptions{}); err != nil {
		t.Fatal(err)
	}
	mount := func() error {
		fs, err := simplefs.Mount(dev)
		if err != nil {
			return err
		}
		k.InitProc.NS.AddMount("/mnt/x", guestos.SFS{FS: fs})
		return nil
	}
	if err := mount(); err != nil {
		t.Fatal(err)
	}
	return &Env{
		Name:         "ram",
		Mount:        "/mnt/x",
		NewProc:      func() *guestos.Proc { return k.Spawn(k.InitProc, "xfs") },
		QuotaCapable: fua,
		Features:     map[string]bool{},
		Remount: func() error {
			p := k.Spawn(k.InitProc, "sync")
			if err := p.Sync(); err != nil {
				return err
			}
			if err := k.InitProc.NS.RemoveMount("/mnt/x"); err != nil {
				return err
			}
			return mount()
		},
	}
}

type fuaDev struct {
	h    *hostsim.Host
	file *hostsim.HostFile
	fua  bool
}

func (d *fuaDev) ReadAt(off int64, b []byte) error  { return d.file.ReadAt(b, off) }
func (d *fuaDev) WriteAt(off int64, b []byte) error { return d.file.WriteAt(b, off) }
func (d *fuaDev) Flush() error                      { return d.file.Fsync() }
func (d *fuaDev) Size() int64                       { return d.file.Size() }
func (d *fuaDev) SupportsFUA() bool                 { return d.fua }
func (d *fuaDev) SetQueueDepth(int)                 {}

func TestCorpusPassesOnFUADevice(t *testing.T) {
	env := ramEnv(t, true)
	res := Run(env, Suite())
	if res.Failed != 0 {
		t.Fatalf("failures on a fully-capable device: %v", res.Failures)
	}
	if res.Skipped != 40 {
		t.Fatalf("skipped %d, want the 40 feature-gated tests", res.Skipped)
	}
	if res.Passed != SuiteSize-40 {
		t.Fatalf("passed %d", res.Passed)
	}
}

func TestCorpusQuotaFailsWithoutFUA(t *testing.T) {
	env := ramEnv(t, false)
	res := Run(env, Suite())
	if res.Failed != 3 {
		t.Fatalf("failed %d, want the 3 quota-report tests: %v", res.Failed, res.Failures)
	}
	for _, f := range res.Failures {
		if !containsStr(f, "quota/report") {
			t.Fatalf("unexpected failure %q", f)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
