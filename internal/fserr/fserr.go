// Package fserr defines the errno-style sentinel errors shared by the
// guest VFS and the filesystems beneath it.
package fserr

import "errors"

var (
	ErrNotFound     = errors.New("no such file or directory (ENOENT)")
	ErrExists       = errors.New("file exists (EEXIST)")
	ErrNotDir       = errors.New("not a directory (ENOTDIR)")
	ErrIsDir        = errors.New("is a directory (EISDIR)")
	ErrNotEmpty     = errors.New("directory not empty (ENOTEMPTY)")
	ErrNoSpace      = errors.New("no space left on device (ENOSPC)")
	ErrNameTooLong  = errors.New("file name too long (ENAMETOOLONG)")
	ErrNotSupported = errors.New("operation not supported (EOPNOTSUPP)")
	ErrInvalid      = errors.New("invalid argument (EINVAL)")
	ErrPerm         = errors.New("operation not permitted (EPERM)")
	ErrAccess       = errors.New("permission denied (EACCES)")
	ErrBusy         = errors.New("device or resource busy (EBUSY)")
	ErrTooManyLinks = errors.New("too many levels of symbolic links (ELOOP)")
	ErrBadHandle    = errors.New("bad file handle (EBADF)")
	ErrReadOnly     = errors.New("read-only file system (EROFS)")
	ErrXDev         = errors.New("invalid cross-device link (EXDEV)")
)
