package obs

import (
	"math/rand"
	"testing"
	"time"
)

// randomRegistry builds a seeded registry with partially-overlapping
// counter and histogram names, so merges exercise both the
// matching-name and disjoint-name paths.
func randomRegistry(rnd *rand.Rand) *Registry {
	r := NewRegistry()
	ctrNames := []string{"a.calls", "b.calls", "c.bytes", "d.irqs", "e.drops"}
	histNames := []string{"a.lat", "b.lat", "c.lat"}
	for _, name := range ctrNames {
		if rnd.Intn(3) == 0 {
			continue // leave some names absent from some registries
		}
		r.Counter(name).Add(int64(rnd.Intn(1_000_000)))
	}
	for _, name := range histNames {
		if rnd.Intn(3) == 0 {
			continue
		}
		h := r.Histogram(name)
		for k, n := 0, rnd.Intn(50); k < n; k++ {
			h.Observe(time.Duration(rnd.Intn(1 << 20)))
		}
	}
	return r
}

// permutations returns every ordering of [0..n).
func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// TestRegistryMergeOrderInvariant pins the commutativity/associativity
// of Registry.Merge: folding the same random registries in every
// possible order must produce byte-identical WriteText output. Fleet
// metrics (Engine.MergedMetrics, the E9 determinism digest) depend on
// exactly this property.
func TestRegistryMergeOrderInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		regs := make([]*Registry, 4)
		for i := range regs {
			regs[i] = randomRegistry(rnd)
		}
		var ref string
		for _, perm := range permutations(len(regs)) {
			agg := NewRegistry()
			for _, i := range perm {
				agg.Merge(regs[i])
			}
			got := agg.Text()
			if ref == "" {
				ref = got
				continue
			}
			if got != ref {
				t.Fatalf("seed %d: fold order %v changed merged text:\n%s\n--- vs reference ---\n%s",
					seed, perm, got, ref)
			}
		}
		if ref == "" {
			t.Fatalf("seed %d produced empty reference text", seed)
		}
	}
}

// TestRegistryMergeAssociativeGrouping checks tree-shaped folds:
// merge(merge(a,b), merge(c,d)) must equal the sequential fold —
// the shape Engine.MergedMetrics relies on when sessions pre-fold
// per-VM registries before the fleet fold.
func TestRegistryMergeAssociativeGrouping(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	a, b, c, d := randomRegistry(rnd), randomRegistry(rnd), randomRegistry(rnd), randomRegistry(rnd)

	seq := NewRegistry()
	for _, r := range []*Registry{a, b, c, d} {
		seq.Merge(r)
	}

	left := NewRegistry()
	left.Merge(a)
	left.Merge(b)
	right := NewRegistry()
	right.Merge(c)
	right.Merge(d)
	tree := NewRegistry()
	tree.Merge(left)
	tree.Merge(right)

	if seq.Text() != tree.Text() {
		t.Fatalf("tree fold differs from sequential fold:\n%s\n--- vs ---\n%s", tree.Text(), seq.Text())
	}
}

// TestRegistryMergeIdempotentZero checks that merging an empty
// registry is the identity, in both directions.
func TestRegistryMergeIdempotentZero(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	r := randomRegistry(rnd)
	want := r.Text()

	r.Merge(NewRegistry())
	if r.Text() != want {
		t.Fatal("merging an empty registry changed the text")
	}

	fresh := NewRegistry()
	fresh.Merge(r)
	if fresh.Text() != want {
		t.Fatalf("empty.Merge(r) != r:\n%s\n--- vs ---\n%s", fresh.Text(), want)
	}
}
