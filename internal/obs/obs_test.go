package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"vmsh/internal/vclock"
)

func testClock() *vclock.Clock { return vclock.New() }

func TestHistogramBucketEdges(t *testing.T) {
	h := NewRegistry().Histogram("h")

	// Zero-duration samples (empty virtqueue drains) land in bucket 0.
	h.Observe(0)
	if got := h.Bucket(0); got != 1 {
		t.Fatalf("zero-duration sample in bucket 0: got %d, want 1", got)
	}
	// Negative durations clamp to bucket 0 too.
	h.Observe(-5)
	if got := h.Bucket(0); got != 2 {
		t.Fatalf("negative sample in bucket 0: got %d, want 2", got)
	}

	// Bucket i covers [2^(i-1), 2^i) ns.
	for _, tc := range []struct {
		d      time.Duration
		bucket int
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3},
		{1023, 10}, {1024, 11},
	} {
		before := h.Bucket(tc.bucket)
		h.Observe(tc.d)
		if got := h.Bucket(tc.bucket); got != before+1 {
			t.Errorf("Observe(%d): bucket %d count %d, want %d", tc.d, tc.bucket, got, before+1)
		}
	}

	// Far beyond the last bucket boundary: clamps, never drops.
	huge := time.Duration(1) << 62
	h.Observe(huge)
	if got := h.Bucket(HistBuckets - 1); got != 1 {
		t.Fatalf("overflow sample: last bucket count %d, want 1", got)
	}
	if h.Max() != huge {
		t.Fatalf("max %v, want %v", h.Max(), huge)
	}

	// Every sample is in exactly one bucket.
	var total int64
	for i := 0; i < HistBuckets; i++ {
		total += h.Bucket(i)
	}
	if total != h.Count() {
		t.Fatalf("bucket total %d != count %d", total, h.Count())
	}
}

func TestHistogramScalars(t *testing.T) {
	h := NewRegistry().Histogram("h")
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean must be 0")
	}
	h.Observe(10)
	h.Observe(30)
	if h.Count() != 2 || h.Sum() != 40 || h.Mean() != 20 || h.Max() != 30 {
		t.Fatalf("count=%d sum=%v mean=%v max=%v", h.Count(), h.Sum(), h.Mean(), h.Max())
	}
}

func TestNilReceivers(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter must read as zero")
	}
	var h *Histogram
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Bucket(0) != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Histogram("x") != nil || r.Snapshot() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	var tr *Tracer
	if tr.Enabled() || tr.Charged() != 0 || tr.Events() != nil || tr.Tracks() != nil {
		t.Fatal("nil tracer must read as empty")
	}
	tr.Enable()
	tr.Disable()
	tr.Reset()
	tk := tr.Track("x") // zero Track
	tk.Event("a", "b")
	tk.Span("a", "b").End()
}

// TestDisabledModeAllocatesNothing pins the zero-overhead contract: a
// disabled tracer's span/event paths and nil instruments must not
// allocate at all on the hot path.
func TestDisabledModeAllocatesNothing(t *testing.T) {
	tr := New(testClock())
	tk := tr.Track("hot")
	var nilCtr *Counter
	var nilHist *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tk.Span("cat", "name")
		sp.End()
		sp.End1("k", 1)
		sp.End2("k1", 1, "k2", 2)
		tk.Event("cat", "name")
		tk.Event1("cat", "name", "k", 1)
		tk.Begin("cat", "name", 7)
		tk.AsyncEnd(7)
		tk.FlowBegin("cat", "name")
		tk.FlowStep("cat", "name")
		tk.FlowEnd("cat", "name")
		tk.FlowBeginQ(7, "cat", "name")
		tk.FlowEndQ(7, "cat", "name")
		tk.ClearFlow()
		nilCtr.Inc()
		nilHist.Observe(42)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op, want 0", allocs)
	}
}

func TestSpanRecording(t *testing.T) {
	clk := testClock()
	tr := New(clk)
	tk := tr.Track("t")
	tr.Enable()

	outer := tk.Span("cat", "outer")
	clk.Advance(10)
	inner := tk.Span("cat", "inner")
	clk.Advance(5)
	inner.End()
	clk.Advance(3)
	outer.End1("n", 42)
	tr.Disable()

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// inner ends first, so it is logged first.
	if evs[0].Name != "inner" || evs[0].TS != 10 || evs[0].Dur != 5 {
		t.Fatalf("inner event %+v", evs[0])
	}
	if evs[1].Name != "outer" || evs[1].TS != 0 || evs[1].Dur != 18 {
		t.Fatalf("outer event %+v", evs[1])
	}
	if evs[1].NArgs != 1 || evs[1].K1 != "n" || evs[1].V1 != 42 {
		t.Fatalf("outer args %+v", evs[1])
	}
	if tr.Charged() != 18 {
		t.Fatalf("charged %v, want 18ns", tr.Charged())
	}

	roots := tr.SpanTree("t")
	if len(roots) != 1 || roots[0].Name != "outer" ||
		len(roots[0].Children) != 1 || roots[0].Children[0].Name != "inner" {
		t.Fatalf("span tree wrong: %s", FormatSpanTree(roots))
	}
}

func TestFormatSpanTreeCollapse(t *testing.T) {
	clk := testClock()
	tr := New(clk)
	tk := tr.Track("t")
	tr.Enable()
	for i := 0; i < 3; i++ {
		sp := tk.Span("vq", "service")
		clk.Advance(2)
		sp.End()
	}
	sp := tk.Span("vq", "other")
	clk.Advance(1)
	sp.End()
	got := FormatSpanTree(tr.SpanTree("t"))
	want := "vq:service x3\nvq:other\n"
	if got != want {
		t.Fatalf("formatted tree %q, want %q", got, want)
	}
}

func TestAsyncSpanCrossTrack(t *testing.T) {
	clk := testClock()
	tr := New(clk)
	drv := tr.Track("drv")
	dev := tr.Track("dev")
	tr.Enable()

	drv.Begin("req", "blk.req", 0x123)
	clk.Advance(250)
	d, ok := dev.AsyncEnd(0x123)
	if !ok || d != 250 {
		t.Fatalf("async end: d=%v ok=%v, want 250ns true", d, ok)
	}
	// Unknown ids (requests begun before tracing, rx fills) are benign.
	if _, ok := dev.AsyncEnd(0x999); ok {
		t.Fatal("unknown async id must return ok=false")
	}
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Phase != PhaseAsyncBegin || evs[1].Phase != PhaseAsyncEnd {
		t.Fatalf("events %+v", evs)
	}
	if evs[0].Track != 0 || evs[1].Track != 1 {
		t.Fatal("async begin/end must keep their own tracks")
	}
}

func TestWriteChromeValidAndDeterministic(t *testing.T) {
	render := func() []byte {
		clk := testClock()
		tr := New(clk)
		tk := tr.Track("vcpu:qemu")
		tr.Enable()
		sp := tk.Span("kvm", "mmio_exit")
		clk.Advance(1234)
		sp.End1("gpa", 0xd0000000)
		tk.Event("irq", "raise")
		tk.Begin("req", "blk.req", 7)
		clk.Advance(999)
		tk.AsyncEnd(7)
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs rendered different Chrome traces")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, a)
	}
	// thread_name metadata + 4 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "M" {
		t.Fatal("first event must be thread_name metadata")
	}
	// Span timestamps are micros: 1234ns -> 1.234.
	if !strings.Contains(string(a), `"ts":0.000,"dur":1.234`) {
		t.Fatalf("span micros formatting missing:\n%s", a)
	}
}

func TestTracerResetKeepsTracks(t *testing.T) {
	clk := testClock()
	tr := New(clk)
	tk := tr.Track("t")
	tr.Enable()
	sp := tk.Span("c", "n")
	clk.Advance(1)
	sp.End()
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Charged() != 0 {
		t.Fatal("reset must drop events and charge")
	}
	// The old handle still points at a registered track.
	sp = tk.Span("c", "n2")
	clk.Advance(1)
	sp.End()
	if evs := tr.Events(); len(evs) != 1 || evs[0].Name != "n2" {
		t.Fatal("track handle must survive Reset")
	}
	if got := tr.Tracks(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("tracks after reset: %v", got)
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.calls").Add(3)
	r.Counter("b.calls").Add(1)
	h := r.Histogram("lat")
	h.Observe(100)
	h.Observe(300)

	snap := r.Snapshot()
	for k, want := range map[string]int64{
		"a.calls": 3, "b.calls": 1,
		"lat.count": 2, "lat.sum_ns": 400, "lat.max_ns": 300,
	} {
		if snap[k] != want {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], want)
		}
	}

	text := r.Text()
	if !strings.Contains(text, "a.calls") || !strings.Contains(text, "count=2") {
		t.Fatalf("text dump missing entries:\n%s", text)
	}
	// Deterministic: same registry renders identically.
	if text != r.Text() {
		t.Fatal("registry text not deterministic")
	}
	// Counters sort before reordering could show: a.calls precedes b.calls.
	if strings.Index(text, "a.calls") > strings.Index(text, "b.calls") {
		t.Fatalf("counters not sorted:\n%s", text)
	}
}

func TestRegistryMerge(t *testing.T) {
	mk := func(c1, c2 int64, samples ...time.Duration) *Registry {
		r := NewRegistry()
		r.Counter("a.calls").Add(c1)
		r.Counter("b.calls").Add(c2)
		h := r.Histogram("lat")
		for _, d := range samples {
			h.Observe(d)
		}
		return r
	}
	agg := NewRegistry()
	agg.Merge(mk(3, 0, 10*time.Nanosecond, 4*time.Microsecond))
	agg.Merge(mk(5, 7, 9*time.Millisecond))
	if v := agg.Counter("a.calls").Value(); v != 8 {
		t.Fatalf("a.calls = %d, want 8", v)
	}
	if v := agg.Counter("b.calls").Value(); v != 7 {
		t.Fatalf("b.calls = %d, want 7", v)
	}
	h := agg.Histogram("lat")
	if h.Count() != 3 {
		t.Fatalf("lat count = %d, want 3", h.Count())
	}
	want := 10*time.Nanosecond + 4*time.Microsecond + 9*time.Millisecond
	if h.Sum() != want {
		t.Fatalf("lat sum = %v, want %v", h.Sum(), want)
	}
	if h.Max() != 9*time.Millisecond {
		t.Fatalf("lat max = %v, want 9ms", h.Max())
	}
	if h.Bucket(bucketOf(4*time.Microsecond)) != 1 {
		t.Fatalf("merged bucket for 4us missing")
	}

	// Merge order must not change the aggregate (commutative folds):
	// the property that makes shard-local metrics deterministic.
	rev := NewRegistry()
	rev.Merge(mk(5, 7, 9*time.Millisecond))
	rev.Merge(mk(3, 0, 10*time.Nanosecond, 4*time.Microsecond))
	if agg.Text() != rev.Text() {
		t.Fatalf("merge order changed the aggregate:\n%s\nvs\n%s", agg.Text(), rev.Text())
	}

	// Nil receivers/sources are inert.
	var nilReg *Registry
	nilReg.Merge(agg)
	agg.Merge(nil)
}
