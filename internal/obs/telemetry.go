package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vmsh/internal/vclock"
)

// Sample is one telemetry snapshot: the registry's scalar view frozen
// at a virtual instant.
type Sample struct {
	VTime  time.Duration
	Values map[string]int64
}

// Telemetry periodically samples a Registry on virtual-time interval
// boundaries into a fixed-capacity ring buffer, turning the registry's
// final-value counters into time series over vtime. Sampling is driven
// by the clock's own Observe hook, so it fires deterministically: the
// first Advance landing at or past each interval boundary takes one
// snapshot, regardless of wall-clock scheduling or worker count.
//
// Telemetry only reads simulation state — it never advances the clock
// or touches the registry's values — so enabling it cannot change any
// simulated result or determinism digest.
type Telemetry struct {
	clock    *vclock.Clock
	reg      *Registry
	interval time.Duration

	mu        sync.Mutex
	next      time.Duration
	ring      []Sample
	head      int // index of oldest sample when full
	full      bool
	taken     int64 // total samples ever taken (>= len when ring wrapped)
	unobserve func()
}

// NewTelemetry starts sampling reg every interval of clock's virtual
// time, keeping the most recent capacity samples. interval and
// capacity must be positive.
func NewTelemetry(clock *vclock.Clock, reg *Registry, interval time.Duration, capacity int) *Telemetry {
	if interval <= 0 {
		panic("obs: telemetry interval must be positive")
	}
	if capacity <= 0 {
		panic("obs: telemetry capacity must be positive")
	}
	tm := &Telemetry{
		clock:    clock,
		reg:      reg,
		interval: interval,
		ring:     make([]Sample, 0, capacity),
	}
	now := clock.Now()
	tm.next = now - now%interval + interval
	tm.unobserve = clock.Observe(func(time.Duration) {
		tm.tick(clock.Now())
	})
	return tm
}

// tick takes a sample when the clock crossed the next boundary. One
// sample per crossing: a single large Advance spanning many boundaries
// still snapshots once (the intermediate instants never existed).
func (tm *Telemetry) tick(now time.Duration) {
	tm.mu.Lock()
	if now < tm.next {
		tm.mu.Unlock()
		return
	}
	tm.next = now - now%tm.interval + tm.interval
	s := Sample{VTime: now, Values: tm.reg.Snapshot()}
	if len(tm.ring) < cap(tm.ring) {
		tm.ring = append(tm.ring, s)
	} else {
		tm.ring[tm.head] = s
		tm.head = (tm.head + 1) % cap(tm.ring)
		tm.full = true
	}
	tm.taken++
	tm.mu.Unlock()
}

// Stop detaches the clock observer; recorded samples survive.
func (tm *Telemetry) Stop() {
	if tm == nil {
		return
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	if tm.unobserve != nil {
		tm.unobserve()
		tm.unobserve = nil
	}
}

// Interval returns the sampling period.
func (tm *Telemetry) Interval() time.Duration { return tm.interval }

// Taken returns how many samples were ever taken (ring overwrites
// included).
func (tm *Telemetry) Taken() int64 {
	if tm == nil {
		return 0
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	return tm.taken
}

// Samples returns the retained samples oldest-first.
func (tm *Telemetry) Samples() []Sample {
	if tm == nil {
		return nil
	}
	tm.mu.Lock()
	defer tm.mu.Unlock()
	out := make([]Sample, 0, len(tm.ring))
	if tm.full {
		out = append(out, tm.ring[tm.head:]...)
		out = append(out, tm.ring[:tm.head]...)
	} else {
		out = append(out, tm.ring...)
	}
	return out
}

// Series extracts one metric's time series from the retained samples:
// parallel vtime/value slices oldest-first. Samples missing the key
// contribute a zero (the counter did not exist yet).
func (tm *Telemetry) Series(key string) ([]time.Duration, []int64) {
	samples := tm.Samples()
	ts := make([]time.Duration, len(samples))
	vs := make([]int64, len(samples))
	for i, s := range samples {
		ts[i] = s.VTime
		vs[i] = s.Values[key]
	}
	return ts, vs
}

// Keys returns the union of metric keys across retained samples,
// sorted.
func (tm *Telemetry) Keys() []string {
	set := make(map[string]struct{})
	for _, s := range tm.Samples() {
		for k := range s.Values {
			set[k] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the retained series deterministically: one line
// per sample per sorted key. Intended for examples and debugging, not
// machine parsing (use Samples/Series for that).
func (tm *Telemetry) WriteText(sb *strings.Builder, keys ...string) {
	samples := tm.Samples()
	if len(keys) == 0 {
		keys = tm.Keys()
	}
	for _, s := range samples {
		for _, k := range keys {
			fmt.Fprintf(sb, "%12s %s=%d\n", s.VTime, k, s.Values[k])
		}
	}
}
