package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"vmsh/internal/vclock"
)

// buildShardTracer records a deterministic little scenario on a fresh
// tracer standing in for one shard.
func buildShardTracer(shard int) *Tracer {
	clk := vclock.New()
	tr := New(clk)
	tr.SetFlowBase(uint64(shard+1) << 40)
	dev := tr.Track("dev")
	link := tr.Track("link")
	tr.Enable()

	clk.Advance(time.Duration(shard+1) * 100)
	sp := dev.Span("vq", "service")
	clk.Advance(50)
	sp.End()
	dev.Begin("req", "blk.read", 7)
	clk.Advance(30)
	dev.AsyncEnd(7)
	id := dev.FlowBegin("flow", "net.frame")
	clk.Advance(10)
	link.FlowStep("flow", "transit")
	clk.Advance(10)
	link.FlowEnd("flow", "net.rx")
	_ = id
	return tr
}

func buildMerged(n int) *MergedTrace {
	tracers := make([]*Tracer, n)
	for i := range tracers {
		tracers[i] = buildShardTracer(i)
	}
	return MergeShardTraces(tracers)
}

func TestMergedTraceOrderingAndDeterminism(t *testing.T) {
	m := buildMerged(3)
	evs := m.Events()
	if len(evs) != m.Len() || m.Len() == 0 {
		t.Fatalf("Len=%d, Events=%d", m.Len(), len(evs))
	}
	for i := 1; i < len(evs); i++ {
		a, b := evs[i-1], evs[i]
		ea, eb := emitTime(a.Event), emitTime(b.Event)
		if ea > eb || (ea == eb && a.Shard > b.Shard) {
			t.Fatalf("merge order violated at %d: (%v,s%d) before (%v,s%d)",
				i, ea, a.Shard, eb, b.Shard)
		}
	}

	var b1, b2 strings.Builder
	if err := buildMerged(3).WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := buildMerged(3).WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("identical fleets produced different merged trace bytes")
	}
}

func TestMergedChromeIsValidJSONWithPerShardPIDs(t *testing.T) {
	var sb strings.Builder
	if err := buildMerged(2).WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		if pid, ok := e["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("want events under pid 1 and 2 (one per shard), got %v", pids)
	}
	if !strings.Contains(out, `"process_name"`) {
		t.Fatal("merged trace lacks process_name metadata")
	}
	// Async ids must be process-scoped in the merged export: both
	// shards used async id 7, which would alias without id2.local.
	if !strings.Contains(out, `"id2":{"local":"0x7"}`) {
		t.Fatal("merged trace does not scope async ids with id2.local")
	}
}

func TestMergedFlowStatsAndValidation(t *testing.T) {
	m := buildMerged(3)
	fs := m.FlowStats()
	if fs.Begins != 3 || fs.Steps != 3 || fs.Ends != 3 {
		t.Fatalf("flow stats = %+v, want 3/3/3", fs)
	}
	if fs.Unmatched != 0 {
		t.Fatalf("unmatched flows: %+v", fs)
	}
	if err := m.ValidateFlows(); err != nil {
		t.Fatal(err)
	}

	// An end whose id was never begun must fail validation.
	clk := vclock.New()
	tr := New(clk)
	tk := tr.Track("t")
	tr.Enable()
	tr.AdoptFlow(12345)
	tk.FlowEnd("flow", "orphan")
	bad := MergeShardTraces([]*Tracer{tr})
	if err := bad.ValidateFlows(); err == nil {
		t.Fatal("orphan flow end passed validation")
	}
}

func TestMergedFlowValidationShardOrderInsensitive(t *testing.T) {
	// Reply traffic: the flow begins on shard 1 and its step/end land
	// on shard 0, so the begin lives on a *later* shard than the events
	// referencing it. Validation must pair them regardless of shard
	// scan order.
	a, b := New(vclock.New()), New(vclock.New())
	b.SetFlowBase(2 << 40)
	ta, tb := a.Track("dev"), b.Track("dev")
	a.Enable()
	b.Enable()
	id := tb.FlowBegin("flow", "reply")
	a.AdoptFlow(id)
	ta.FlowStep("flow", "bridge.rx")
	ta.FlowEnd("flow", "net.rx")

	m := MergeShardTraces([]*Tracer{a, b})
	if err := m.ValidateFlows(); err != nil {
		t.Fatalf("reply-direction flow falsely unmatched: %v", err)
	}
	if fs := m.FlowStats(); fs.CrossShard != 1 || fs.Unmatched != 0 {
		t.Fatalf("flow stats = %+v, want CrossShard=1 Unmatched=0", fs)
	}
}

func TestMergedTraceCrossShardFlowCounting(t *testing.T) {
	// Simulate a bridge crossing: shard 0 begins a flow, shard 1 adopts
	// the id and ends it.
	a, b := buildShardTracer(0), buildShardTracer(1)
	ta := a.Track("dev")
	a.Enable()
	id := ta.FlowBegin("flow", "cross")
	b.AdoptFlow(id)
	tb := b.Track("dev")
	tb.FlowStep("flow", "bridge.rx")
	tb.FlowEnd("flow", "net.rx")

	m := MergeShardTraces([]*Tracer{a, b})
	if err := m.ValidateFlows(); err != nil {
		t.Fatal(err)
	}
	if fs := m.FlowStats(); fs.CrossShard != 1 {
		t.Fatalf("CrossShard = %d, want 1 (%+v)", fs.CrossShard, fs)
	}
}
