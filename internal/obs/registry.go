package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named monotonically-increasing int64. A nil *Counter is
// a valid sink that drops everything, so components can carry counter
// fields unconditionally and only pay when wired to a registry.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// HistBuckets is the number of fixed log2 buckets in a Histogram.
// Bucket 0 holds durations < 1ns (zero-duration spans); bucket i holds
// durations in [2^(i-1), 2^i) ns; the last bucket absorbs everything
// at or beyond 2^(HistBuckets-2) ns (~2.3 virtual hours), so
// overflowing values clamp rather than drop.
const HistBuckets = 44

// Histogram is a named fixed-bucket virtual-time histogram. Recording
// is lock-free and allocation-free: one bits.Len64 plus two atomic
// adds. A nil *Histogram drops everything.
type Histogram struct {
	name    string
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // ns
	max     atomic.Int64 // ns
}

// bucketOf maps a duration to its bucket index. Negative durations
// (which the vclock forbids anyway) clamp to bucket 0.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d)) // d in [2^(b-1), 2^b)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Max returns the largest sample seen.
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Bucket returns the sample count in bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// Name returns the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Registry holds named counters and histograms. Registration takes a
// lock and may allocate; the returned handles are lock-free. Names are
// dotted paths ("host.procvm.calls", "blk.req_vlat").
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  make(map[string]*Counter),
		hists: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. A nil registry returns a nil (drop-everything) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.ctrs[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.ctrs[name] = c
	return c
}

// Histogram returns the histogram registered under name, creating it
// on first use. A nil registry returns a nil histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// merge folds src's samples into h: buckets and count/sum add, max
// takes the larger value.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src == nil {
		return
	}
	for i := 0; i < HistBuckets; i++ {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	if m := src.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
}

// Merge folds every counter and histogram of src into r: counters add,
// histogram buckets/counts/sums add and maxima take the larger value.
// Missing names are created in r. Because every fold is commutative
// and associative, merging a set of shard-local registries yields the
// same aggregate no matter how the shards were scheduled — the
// deterministic-aggregation half of the engine's shard-local metrics
// contract (the conventional call order, shard 0..N-1, additionally
// fixes registration order so WriteText output is byte-stable). A nil
// r or src is a no-op. src must be quiescent for a coherent result;
// the engine merges only after its run barrier.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	srcCtrs := make(map[string]*Counter, len(src.ctrs))
	for n, c := range src.ctrs {
		srcCtrs[n] = c
	}
	srcHists := make(map[string]*Histogram, len(src.hists))
	for n, h := range src.hists {
		srcHists[n] = h
	}
	src.mu.Unlock()
	names := make([]string, 0, len(srcCtrs))
	for n := range srcCtrs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Counter(n).Add(srcCtrs[n].Value())
	}
	names = names[:0]
	for n := range srcHists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.Histogram(n).merge(srcHists[n])
	}
}

// Snapshot returns every counter value plus, for each histogram, its
// derived scalars (<name>.count, <name>.sum_ns, <name>.max_ns). The
// map is freshly allocated; keys are stable across runs.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.ctrs)+3*len(r.hists))
	for name, c := range r.ctrs {
		out[name] = c.Value()
	}
	for name, h := range r.hists {
		out[name+".count"] = h.Count()
		out[name+".sum_ns"] = int64(h.Sum())
		out[name+".max_ns"] = int64(h.Max())
	}
	return out
}

// histRange formats the virtual-time range a bucket covers.
func histRange(i int) string {
	if i == 0 {
		return "0"
	}
	lo := time.Duration(1) << (i - 1)
	if i == HistBuckets-1 {
		return fmt.Sprintf(">=%v", lo)
	}
	return fmt.Sprintf("[%v,%v)", lo, time.Duration(1)<<i)
}

// WriteText appends a deterministic plain-text dump of the registry:
// counters sorted by name, then histograms sorted by name with only
// their non-empty buckets.
func (r *Registry) WriteText(sb *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	ctrNames := make([]string, 0, len(r.ctrs))
	for n := range r.ctrs {
		ctrNames = append(ctrNames, n)
	}
	histNames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	ctrs, hists := r.ctrs, r.hists
	r.mu.Unlock()
	sort.Strings(ctrNames)
	sort.Strings(histNames)
	for _, n := range ctrNames {
		fmt.Fprintf(sb, "%-32s %d\n", n, ctrs[n].Value())
	}
	for _, n := range histNames {
		h := hists[n]
		fmt.Fprintf(sb, "%-32s count=%d sum=%v mean=%v max=%v\n",
			n, h.Count(), h.Sum(), h.Mean(), h.Max())
		for i := 0; i < HistBuckets; i++ {
			if c := h.Bucket(i); c != 0 {
				fmt.Fprintf(sb, "  %-22s %d\n", histRange(i), c)
			}
		}
	}
}

// Text returns WriteText's output as a string.
func (r *Registry) Text() string {
	var sb strings.Builder
	r.WriteText(&sb)
	return sb.String()
}
