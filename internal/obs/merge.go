package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// shardTrace is one shard tracer's snapshot inside a MergedTrace.
type shardTrace struct {
	tracks []string
	events []Event
}

// MergedEvent is one event of the fleet-wide merged stream, annotated
// with the shard that emitted it.
type MergedEvent struct {
	Shard int
	Event
}

// MergedTrace is the deterministic fleet-wide trace: every shard
// tracer's event log merged in (emission vtime, shard, per-shard
// order) — the same discipline as the engine's Timeline. Per-shard
// logs are a pure function of the simulation (shards are
// single-threaded within a window), so the merged stream — and the
// bytes WriteChrome produces — are identical at any worker count.
type MergedTrace struct {
	shards []shardTrace
	total  int
}

// MergeShardTraces snapshots the given tracers (index == shard) into a
// merged fleet trace. Nil tracers contribute nothing.
func MergeShardTraces(tracers []*Tracer) *MergedTrace {
	m := &MergedTrace{shards: make([]shardTrace, len(tracers))}
	for i, t := range tracers {
		m.shards[i] = shardTrace{tracks: t.Tracks(), events: t.Events()}
		m.total += len(m.shards[i].events)
	}
	return m
}

// Shards returns the number of shard traces merged.
func (m *MergedTrace) Shards() int { return len(m.shards) }

// Len returns the total event count across all shards.
func (m *MergedTrace) Len() int { return m.total }

// emitTime is the virtual time an event entered its shard's log:
// spans are appended at End, everything else at occurrence. Per-shard
// logs are non-decreasing in it, which makes the k-way merge stable.
func emitTime(e Event) time.Duration { return e.TS + e.Dur }

// Events returns the merged stream ordered by (emission vtime, shard,
// per-shard log order).
func (m *MergedTrace) Events() []MergedEvent {
	out := make([]MergedEvent, 0, m.total)
	for shard, st := range m.shards {
		for _, e := range st.events {
			out = append(out, MergedEvent{Shard: shard, Event: e})
		}
	}
	// Per-shard logs are already ordered; a stable sort on (emit,
	// shard) therefore realises the k-way merge deterministically.
	sort.SliceStable(out, func(i, j int) bool {
		ei, ej := emitTime(out[i].Event), emitTime(out[j].Event)
		if ei != ej {
			return ei < ej
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// WriteChrome writes the merged fleet trace as Chrome trace-event JSON
// loadable in Perfetto: each shard is a process (pid = shard+1) whose
// tracks are named threads; events appear in merged (emission vtime,
// shard, seq) order. Async ids are process-scoped (id2.local) so
// request spans never alias across shards; flow ids are global, so a
// frame crossing a bridge renders as one connected arrow chain from
// the sending shard's process into the receiver's. Output is
// hand-marshaled and byte-identical across runs and worker counts.
func (m *MergedTrace) WriteChrome(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(line)
	}

	var line strings.Builder
	for shard, st := range m.shards {
		line.Reset()
		line.WriteString(`{"name":"process_name","ph":"M","pid":`)
		line.WriteString(strconv.Itoa(shard + 1))
		line.WriteString(`,"args":{"name":"shard `)
		line.WriteString(strconv.Itoa(shard))
		line.WriteString(`"}}`)
		emit(line.String())
		for i, name := range st.tracks {
			line.Reset()
			line.WriteString(`{"name":"thread_name","ph":"M","pid":`)
			line.WriteString(strconv.Itoa(shard + 1))
			line.WriteString(`,"tid":`)
			line.WriteString(strconv.Itoa(i + 1))
			line.WriteString(`,"args":{"name":`)
			jsonString(&line, name)
			line.WriteString("}}")
			emit(line.String())
		}
	}

	for _, me := range m.Events() {
		line.Reset()
		writeChromeEvent(&line, me.Event, me.Shard+1, true)
		emit(line.String())
	}

	sb.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// FlowStats summarises the causal-flow events of a merged trace.
type FlowStats struct {
	Begins int // flow chains opened
	Steps  int // intermediate waypoints
	Ends   int // flow chains terminated
	// Unmatched counts steps/ends whose id was never begun — always a
	// bug (ids are allocated at begin time).
	Unmatched int
	// CrossShard counts flows whose events span more than one shard —
	// frames that crossed a Bridge.
	CrossShard int
}

// FlowStats scans the merged trace and pairs flow events by id. Two
// passes: begins are registered first across every shard, because a
// bridged flow may begin on a higher-numbered shard than the one its
// steps land on (reply traffic), and shard scan order must not matter.
func (m *MergedTrace) FlowStats() FlowStats {
	var st FlowStats
	type flowSeen struct {
		begun  bool
		shard  int
		spread bool
	}
	seen := make(map[uint64]*flowSeen)
	look := func(id uint64, shard int) *flowSeen {
		f := seen[id]
		if f == nil {
			f = &flowSeen{shard: shard}
			seen[id] = f
		} else if f.shard != shard {
			f.spread = true
		}
		return f
	}
	for shard, sh := range m.shards {
		for _, e := range sh.events {
			if e.Phase == PhaseFlowBegin {
				st.Begins++
				look(e.ID, shard).begun = true
			}
		}
	}
	for shard, sh := range m.shards {
		for _, e := range sh.events {
			switch e.Phase {
			case PhaseFlowStep:
				st.Steps++
				if !look(e.ID, shard).begun {
					st.Unmatched++
				}
			case PhaseFlowEnd:
				st.Ends++
				if !look(e.ID, shard).begun {
					st.Unmatched++
				}
			}
		}
	}
	for _, f := range seen {
		if f.spread {
			st.CrossShard++
		}
	}
	return st
}

// ValidateFlows fails when any flow step or end lacks a begin — the
// pairing invariant a Perfetto-valid trace must satisfy. (Begins
// without ends are legal: dropped frames terminate early.)
func (m *MergedTrace) ValidateFlows() error {
	st := m.FlowStats()
	if st.Unmatched > 0 {
		return fmt.Errorf("obs: %d flow events reference ids never begun (begins=%d steps=%d ends=%d)",
			st.Unmatched, st.Begins, st.Steps, st.Ends)
	}
	return nil
}
