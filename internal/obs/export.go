package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// micros formats a duration as decimal microseconds with three
// fractional digits, using integer math only, so output is
// byte-identical across platforms.
func micros(d time.Duration) string {
	ns := int64(d)
	return strconv.FormatInt(ns/1000, 10) + "." + pad3(ns%1000)
}

func pad3(n int64) string {
	if n < 0 {
		n = -n
	}
	s := strconv.FormatInt(n, 10)
	return "000"[:3-len(s)] + s
}

// jsonString escapes s as a JSON string literal. Track/category/span
// names are plain ASCII identifiers, but escape defensively anyway.
func jsonString(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(sb, "\\u%04x", c)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
}

// WriteChrome writes the event log as Chrome trace-event JSON (the
// "JSON object format": {"traceEvents":[...]}) loadable in Perfetto or
// chrome://tracing. The whole simulation is one process (pid 1); every
// track becomes a named thread (tid = TrackID+1). Timestamps are
// virtual microseconds. Output is hand-marshaled in event-log order
// with tracks in registration order, so identical runs produce
// byte-identical files.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("{\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			sb.WriteString(",\n")
		}
		first = false
		sb.WriteString(line)
	}

	var tracks []string
	var events []Event
	if t != nil {
		tracks = t.Tracks()
		events = t.Events()
	}

	var line strings.Builder
	for i, name := range tracks {
		line.Reset()
		line.WriteString(`{"name":"thread_name","ph":"M","pid":1,"tid":`)
		line.WriteString(strconv.Itoa(i + 1))
		line.WriteString(`,"args":{"name":`)
		jsonString(&line, name)
		line.WriteString("}}")
		emit(line.String())
	}

	for _, e := range events {
		line.Reset()
		writeChromeEvent(&line, e, 1, false)
		emit(line.String())
	}

	sb.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// writeChromeEvent serialises one event as a Chrome trace-event JSON
// object under the given pid. localAsync scopes async ids to the
// process via id2.local — the multi-shard merged export uses it so
// per-shard request spans never alias across shards; flow ids stay
// global in either mode (cross-shard arrows need them to). Flow ends
// carry bp:"e" so Perfetto binds the arrow to the enclosing slice.
func writeChromeEvent(line *strings.Builder, e Event, pid int, localAsync bool) {
	line.WriteString(`{"name":`)
	jsonString(line, e.Name)
	line.WriteString(`,"cat":`)
	jsonString(line, e.Cat)
	line.WriteString(`,"ph":"`)
	line.WriteByte(e.Phase)
	line.WriteString(`","pid":`)
	line.WriteString(strconv.Itoa(pid))
	line.WriteString(`,"tid":`)
	line.WriteString(strconv.Itoa(int(e.Track) + 1))
	line.WriteString(`,"ts":`)
	line.WriteString(micros(e.TS))
	switch e.Phase {
	case PhaseSpan:
		line.WriteString(`,"dur":`)
		line.WriteString(micros(e.Dur))
	case PhaseInstant:
		line.WriteString(`,"s":"t"`)
	case PhaseAsyncBegin, PhaseAsyncEnd:
		if localAsync {
			line.WriteString(`,"id2":{"local":"0x`)
			line.WriteString(strconv.FormatUint(e.ID, 16))
			line.WriteString(`"}`)
		} else {
			line.WriteString(`,"id":"`)
			line.WriteString(strconv.FormatUint(e.ID, 16))
			line.WriteString(`"`)
		}
	case PhaseFlowBegin, PhaseFlowStep, PhaseFlowEnd:
		line.WriteString(`,"id":"`)
		line.WriteString(strconv.FormatUint(e.ID, 16))
		line.WriteString(`"`)
		if e.Phase == PhaseFlowEnd {
			line.WriteString(`,"bp":"e"`)
		}
	}
	if e.NArgs > 0 {
		line.WriteString(`,"args":{`)
		jsonString(line, e.K1)
		line.WriteString(`:`)
		line.WriteString(strconv.FormatInt(e.V1, 10))
		if e.NArgs > 1 {
			line.WriteString(`,`)
			jsonString(line, e.K2)
			line.WriteString(`:`)
			line.WriteString(strconv.FormatInt(e.V2, 10))
		}
		line.WriteString(`}`)
	}
	line.WriteString(`}`)
}

// SpanNode is one node of a reconstructed span tree: a complete span
// plus the spans nested (by time containment) inside it on the same
// track.
type SpanNode struct {
	Name     string
	Cat      string
	Start    time.Duration
	Dur      time.Duration
	Children []*SpanNode
}

// SpanTree reconstructs, for one track, the nesting of complete spans
// by time containment: span B is a child of span A when A's interval
// contains B's and A was emitted after B (spans close innermost
// first). Instants and async events are ignored.
func (t *Tracer) SpanTree(track string) []*SpanNode {
	if t == nil {
		return nil
	}
	var id TrackID = -1
	for i, name := range t.Tracks() {
		if name == track {
			id = TrackID(i)
			break
		}
	}
	if id < 0 {
		return nil
	}
	return buildSpanForest(t.Events(), id)
}

// buildSpanForest reconstructs one track's span nesting from an
// end-ordered event log — the shared core of Tracer.SpanTree and the
// profiler's per-shard folding.
func buildSpanForest(evs []Event, id TrackID) []*SpanNode {
	var roots []*SpanNode
	var stack []*SpanNode
	// Events are emitted at span End, so the log is ordered by end
	// time: an enclosing span always appears after its children. Walk
	// backwards so parents are seen first and children attach to the
	// innermost open interval that contains them.
	for i := len(evs) - 1; i >= 0; i-- {
		e := evs[i]
		if e.Track != id || e.Phase != PhaseSpan {
			continue
		}
		n := &SpanNode{Name: e.Name, Cat: e.Cat, Start: e.TS, Dur: e.Dur}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			// Containment, except a zero-duration span sitting exactly on
			// the candidate parent's start: it ended before that span
			// opened (the log is end-ordered), so it is a sibling.
			if n.Start >= top.Start && n.Start+n.Dur <= top.Start+top.Dur &&
				!(n.Dur == 0 && n.Start == top.Start) {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			roots = append(roots, n)
		} else {
			p := stack[len(stack)-1]
			p.Children = append(p.Children, n)
		}
		stack = append(stack, n)
	}
	reverseTree(roots)
	return roots
}

// reverseTree restores chronological order (the backwards walk built
// everything reversed).
func reverseTree(ns []*SpanNode) {
	for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
		ns[i], ns[j] = ns[j], ns[i]
	}
	for _, n := range ns {
		reverseTree(n.Children)
	}
}

// FormatSpanTree renders a span tree as indented names only — no
// timestamps or args — with runs of identical siblings collapsed to
// "name xN". That keeps golden files stable under cost-model tweaks
// while still pinning the event taxonomy and nesting.
func FormatSpanTree(roots []*SpanNode) string {
	var sb strings.Builder
	formatLevel(&sb, roots, 0)
	return sb.String()
}

func formatLevel(sb *strings.Builder, ns []*SpanNode, depth int) {
	for i := 0; i < len(ns); {
		j := i
		for j < len(ns) && sameShape(ns[j], ns[i]) {
			j++
		}
		for k := 0; k < depth; k++ {
			sb.WriteString("  ")
		}
		sb.WriteString(ns[i].Cat)
		sb.WriteByte(':')
		sb.WriteString(ns[i].Name)
		if j-i > 1 {
			fmt.Fprintf(sb, " x%d", j-i)
		}
		sb.WriteByte('\n')
		formatLevel(sb, ns[i].Children, depth+1)
		i = j
	}
}

// sameShape reports whether two nodes render identically (same label
// and same child shape), making them collapsible as a xN run.
func sameShape(a, b *SpanNode) bool {
	if a.Cat != b.Cat || a.Name != b.Name || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !sameShape(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
