package obs

import (
	"testing"
	"time"

	"vmsh/internal/vclock"
)

func TestTelemetrySamplesOnBoundaries(t *testing.T) {
	clk := vclock.New()
	reg := NewRegistry()
	ctr := reg.Counter("work")
	tm := NewTelemetry(clk, reg, 100*time.Nanosecond, 16)

	for i := 0; i < 5; i++ {
		ctr.Inc()
		clk.Advance(100 * time.Nanosecond)
	}
	samples := tm.Samples()
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5", len(samples))
	}
	for i, s := range samples {
		if want := int64(i + 1); s.Values["work"] != want {
			t.Errorf("sample %d: work=%d, want %d", i, s.Values["work"], want)
		}
		if want := time.Duration(i+1) * 100; s.VTime != want {
			t.Errorf("sample %d at %v, want %v", i, s.VTime, want)
		}
	}
}

func TestTelemetryOneSamplePerCrossing(t *testing.T) {
	clk := vclock.New()
	reg := NewRegistry()
	tm := NewTelemetry(clk, reg, 100*time.Nanosecond, 16)
	// One giant advance spans many boundaries: the intermediate
	// instants never existed, so exactly one sample is taken.
	clk.Advance(1000 * time.Nanosecond)
	if got := tm.Taken(); got != 1 {
		t.Fatalf("taken = %d, want 1", got)
	}
	// The sampler re-arms on the next boundary after `now`.
	clk.Advance(99 * time.Nanosecond)
	if got := tm.Taken(); got != 1 {
		t.Fatalf("taken after sub-boundary advance = %d, want 1", got)
	}
	clk.Advance(1 * time.Nanosecond)
	if got := tm.Taken(); got != 2 {
		t.Fatalf("taken after boundary = %d, want 2", got)
	}
}

func TestTelemetryRingEvictsOldest(t *testing.T) {
	clk := vclock.New()
	reg := NewRegistry()
	ctr := reg.Counter("n")
	tm := NewTelemetry(clk, reg, 10*time.Nanosecond, 3)
	for i := 0; i < 10; i++ {
		ctr.Inc()
		clk.Advance(10 * time.Nanosecond)
	}
	samples := tm.Samples()
	if len(samples) != 3 {
		t.Fatalf("ring held %d, want 3", len(samples))
	}
	// Oldest-first, and only the newest three survive (counts 8,9,10).
	for i, s := range samples {
		if want := int64(8 + i); s.Values["n"] != want {
			t.Fatalf("sample %d: n=%d, want %d", i, s.Values["n"], want)
		}
	}
	if tm.Taken() != 10 {
		t.Fatalf("taken = %d, want 10", tm.Taken())
	}
}

func TestTelemetryStopDetaches(t *testing.T) {
	clk := vclock.New()
	reg := NewRegistry()
	tm := NewTelemetry(clk, reg, 10*time.Nanosecond, 4)
	clk.Advance(10 * time.Nanosecond)
	tm.Stop()
	clk.Advance(100 * time.Nanosecond)
	if tm.Taken() != 1 {
		t.Fatalf("sampler kept running after Stop: %d samples", tm.Taken())
	}
}

func TestTelemetrySeries(t *testing.T) {
	clk := vclock.New()
	reg := NewRegistry()
	ctr := reg.Counter("x")
	tm := NewTelemetry(clk, reg, 10*time.Nanosecond, 8)
	ctr.Add(5)
	clk.Advance(10 * time.Nanosecond)
	ctr.Add(5)
	clk.Advance(10 * time.Nanosecond)
	ts, vs := tm.Series("x")
	if len(ts) != 2 || len(vs) != 2 {
		t.Fatalf("series lengths %d/%d, want 2/2", len(ts), len(vs))
	}
	if vs[0] != 5 || vs[1] != 10 {
		t.Fatalf("series values %v, want [5 10]", vs)
	}
	if ts[0] != 10 || ts[1] != 20 {
		t.Fatalf("series vtimes %v, want [10ns 20ns]", ts)
	}
}
