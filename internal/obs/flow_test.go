package obs

import (
	"strings"
	"testing"
)

func TestFlowBeginStepEnd(t *testing.T) {
	clk := testClock()
	tr := New(clk)
	dev := tr.Track("dev")
	link := tr.Track("link")
	tr.Enable()

	id := dev.FlowBegin("flow", "net.frame")
	if id == 0 {
		t.Fatal("FlowBegin returned 0 while enabled")
	}
	if got := tr.CurrentFlow(); got != id {
		t.Fatalf("CurrentFlow = %d, want %d", got, id)
	}
	clk.Advance(10)
	link.FlowStep("flow", "transit")
	clk.Advance(5)
	link.FlowEnd("flow", "net.rx")
	if got := tr.CurrentFlow(); got != 0 {
		t.Fatalf("CurrentFlow after end = %d, want 0", got)
	}
	// Steps/ends with no ambient flow record nothing.
	link.FlowStep("flow", "ghost")
	link.FlowEnd("flow", "ghost")

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(evs), evs)
	}
	wantPhases := []byte{PhaseFlowBegin, PhaseFlowStep, PhaseFlowEnd}
	for i, e := range evs {
		if e.Phase != wantPhases[i] {
			t.Errorf("event %d phase %q, want %q", i, e.Phase, wantPhases[i])
		}
		if e.ID != id {
			t.Errorf("event %d id %d, want %d", i, e.ID, id)
		}
	}
}

func TestFlowIDsUniqueAndBaseTagged(t *testing.T) {
	tr := New(testClock())
	tr.SetFlowBase(uint64(3) << 40)
	tk := tr.Track("t")
	tr.Enable()
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		id := tk.FlowBegin("flow", "f")
		if seen[id] {
			t.Fatalf("duplicate flow id %d", id)
		}
		seen[id] = true
		if id>>40 != 3 {
			t.Fatalf("flow id %#x not tagged with base 3<<40", id)
		}
		tk.FlowEnd("flow", "f")
	}
}

func TestFlowQueueFIFO(t *testing.T) {
	clk := testClock()
	tr := New(clk)
	drv := tr.Track("driver")
	dev := tr.Track("device")
	tr.Enable()

	const key = 0x1000
	drv.FlowBeginQ(key, "flow", "blk.req")
	clk.Advance(1)
	drv.FlowBeginQ(key, "flow", "blk.req")
	clk.Advance(1)
	dev.FlowEndQ(key, "flow", "complete")
	dev.FlowEndQ(key, "flow", "complete")
	// Extra end on a drained queue records nothing.
	dev.FlowEndQ(key, "flow", "complete")

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// FIFO: first end carries the first begin's id.
	if evs[2].ID != evs[0].ID || evs[3].ID != evs[1].ID {
		t.Fatalf("FIFO pairing broken: begins (%d,%d) ends (%d,%d)",
			evs[0].ID, evs[1].ID, evs[2].ID, evs[3].ID)
	}
	if evs[0].ID == evs[1].ID {
		t.Fatal("queued begins share an id")
	}
}

func TestFlowEventsInChromeExport(t *testing.T) {
	tr := New(testClock())
	tk := tr.Track("t")
	tr.Enable()
	tk.FlowBegin("flow", "f")
	tk.FlowStep("flow", "hop")
	tk.FlowEnd("flow", "done")

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"t"`, `"ph":"f"`, `"bp":"e"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s:\n%s", want, out)
		}
	}
}

func TestFlowStateResets(t *testing.T) {
	tr := New(testClock())
	tk := tr.Track("t")
	tr.Enable()
	tk.FlowBegin("flow", "f")
	tk.FlowBeginQ(1, "flow", "q")
	tr.Reset()
	if tr.CurrentFlow() != 0 {
		t.Fatal("Reset kept ambient flow")
	}
	tk.FlowEndQ(1, "flow", "q")
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("FlowEndQ after Reset recorded %d events, want 0", n)
	}
}
