// Package obs is the observability layer for the simulated stack: a
// span/event tracer and a metrics registry, both keyed to the virtual
// clock.
//
// Everything that charges vclock time (ptrace stops, process_vm
// copies, virtqueue service passes, link transits, attach phases) can
// emit spans onto a per-component Track; the result exports as Chrome
// trace-event JSON loadable in Perfetto, with virtual microseconds as
// timestamps. Because the simulation is deterministic, two runs with
// the same seed produce byte-identical trace files — a property the
// tier-1 tests assert.
//
// The tracer is built to cost nothing while disabled: Track and Span
// are plain value types, every emit path checks one pointer and one
// atomic bool before touching any state, and no interface{} boxing or
// map lookup happens on the hot path (argument helpers take typed
// int64 values). testing.AllocsPerRun over the disabled paths must
// report zero.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"vmsh/internal/vclock"
)

// Phase constants mirror the Chrome trace-event phases the tracer
// emits: complete spans, instants, async begin/end pairs, and causal
// flow begin/step/end chains (rendered as arrows in Perfetto).
const (
	PhaseSpan       = 'X'
	PhaseInstant    = 'i'
	PhaseAsyncBegin = 'b'
	PhaseAsyncEnd   = 'e'
	PhaseFlowBegin  = 's'
	PhaseFlowStep   = 't'
	PhaseFlowEnd    = 'f'
)

// Event is one recorded trace event. Args are a fixed-size inline pair
// so recording never allocates beyond the event log itself.
type Event struct {
	Track TrackID
	Phase byte
	Cat   string
	Name  string
	TS    time.Duration // virtual time at start (spans) or occurrence
	Dur   time.Duration // PhaseSpan only
	ID    uint64        // async phases only
	NArgs uint8
	K1    string
	V1    int64
	K2    string
	V2    int64
}

// TrackID identifies a registered track (one Perfetto "thread").
type TrackID int32

// asyncOpen is one outstanding async span awaiting its end.
type asyncOpen struct {
	track TrackID
	cat   string
	name  string
	start time.Duration
}

// Tracer records virtual-time spans and events. A nil *Tracer is a
// valid disabled tracer; a non-nil tracer is also disabled until
// Enable. All methods are safe for concurrent use.
type Tracer struct {
	clock   *vclock.Clock
	enabled atomic.Bool
	charged atomic.Int64 // total ns the clock advanced while enabled

	// Flow state. flowBase tags every allocated flow id so ids from
	// different shard tracers never collide in a merged fleet trace;
	// curFlow is the ambient flow the current synchronous call chain
	// is propagating (a frame's journey through device, switch and
	// bridge); flowq holds FIFO id queues keyed by virtqueue so the
	// device side can end the flow the driver side began without any
	// shared simulation state.
	flowBase uint64
	flowSeq  atomic.Uint64
	curFlow  atomic.Uint64

	mu        sync.Mutex
	tracks    []string
	byName    map[string]TrackID
	events    []Event
	async     map[uint64]asyncOpen
	flowq     map[uint64][]uint64
	unobserve func() // detaches this tracer's clock observer
}

// New returns a disabled tracer bound to the given clock. Tracks may
// be registered immediately; nothing is recorded until Enable.
func New(clock *vclock.Clock) *Tracer {
	return &Tracer{
		clock:  clock,
		byName: make(map[string]TrackID),
		async:  make(map[uint64]asyncOpen),
		flowq:  make(map[uint64][]uint64),
	}
}

// SetFlowBase tags every flow id this tracer allocates with base (the
// engine sets a per-shard base at construction), making flow ids
// fleet-unique so cross-shard arrows in a merged trace never alias.
// Call during setup, before any events run.
func (t *Tracer) SetFlowBase(base uint64) {
	if t == nil {
		return
	}
	t.flowBase = base
}

// newFlowID allocates the next fleet-unique flow id. Allocation order
// follows the shard's deterministic event order, so ids are identical
// across same-seed runs at any worker count.
func (t *Tracer) newFlowID() uint64 {
	return t.flowBase | t.flowSeq.Add(1)
}

// CurrentFlow returns the ambient flow id the current synchronous call
// chain is propagating (0 when none). Safe on a nil receiver.
func (t *Tracer) CurrentFlow() uint64 {
	if t == nil {
		return 0
	}
	return t.curFlow.Load()
}

// AdoptFlow makes id the ambient flow — how a cross-shard bridge
// continues the sending shard's flow on the receiving shard's tracer.
// Adopting 0 clears instead.
func (t *Tracer) AdoptFlow(id uint64) {
	if t == nil {
		return
	}
	t.curFlow.Store(id)
}

// ClearFlow drops the ambient flow.
func (t *Tracer) ClearFlow() {
	if t == nil {
		return
	}
	t.curFlow.Store(0)
}

// Enable starts recording. It also hooks the clock so the tracer
// accumulates the total charged virtual time (Charged), letting
// consumers reconcile span sums against the clock. The hook is a
// composable vclock.Clock.Observe registration, so enabling a tracer
// never disturbs other clock observers (the engine's shard accounting,
// a second tracer) and repeated Enable calls are idempotent.
func (t *Tracer) Enable() {
	if t == nil {
		return
	}
	t.enabled.Store(true)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.clock != nil && t.unobserve == nil {
		t.unobserve = t.clock.Observe(func(d time.Duration) {
			t.charged.Add(int64(d))
		})
	}
}

// Disable stops recording (events already logged are kept) and
// detaches only this tracer's clock observer.
func (t *Tracer) Disable() {
	if t == nil {
		return
	}
	t.enabled.Store(false)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.unobserve != nil {
		t.unobserve()
		t.unobserve = nil
	}
}

// Enabled reports whether the tracer is currently recording. Safe on a
// nil receiver, which reports false.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Charged returns the total virtual time the clock advanced while the
// tracer was enabled.
func (t *Tracer) Charged() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.charged.Load())
}

// Reset drops all recorded events and outstanding async spans; track
// registrations survive, so cached Track handles stay valid.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = nil
	t.async = make(map[uint64]asyncOpen)
	t.flowq = make(map[uint64][]uint64)
	t.mu.Unlock()
	t.charged.Store(0)
	t.curFlow.Store(0)
}

// Track registers (or finds) a named track and returns a handle. The
// zero Track is valid and permanently disabled. Registration is cheap
// but takes a lock — call it at construction time, not per event.
func (t *Tracer) Track(name string) Track {
	if t == nil {
		return Track{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byName[name]; ok {
		return Track{t: t, id: id}
	}
	id := TrackID(len(t.tracks))
	t.tracks = append(t.tracks, name)
	t.byName[name] = id
	return Track{t: t, id: id}
}

// Tracks returns the registered track names in registration order
// (index == TrackID).
func (t *Tracer) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.tracks))
	copy(out, t.tracks)
	return out
}

// Events returns a snapshot of the event log in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// now reads the virtual clock.
func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

func (t *Tracer) append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Track is a handle onto one named track; all emission goes through
// it. The zero value is disabled, so components can carry a Track
// unconditionally and wire a real one only when observability is on.
type Track struct {
	t  *Tracer
	id TrackID
}

// Live reports whether events emitted on this track are recorded right
// now.
func (tk Track) Live() bool { return tk.t != nil && tk.t.enabled.Load() }

// Span opens a complete-span measurement; call End (or a variant) to
// record it. While the tracer is disabled this returns the zero Span
// and records nothing, allocating nothing.
func (tk Track) Span(cat, name string) Span {
	if !tk.Live() {
		return Span{}
	}
	return Span{t: tk.t, track: tk.id, cat: cat, name: name, start: tk.t.now()}
}

// Event records an instant event.
func (tk Track) Event(cat, name string) {
	if !tk.Live() {
		return
	}
	tk.t.append(Event{Track: tk.id, Phase: PhaseInstant, Cat: cat, Name: name, TS: tk.t.now()})
}

// Event1 records an instant event with one typed argument.
func (tk Track) Event1(cat, name, k string, v int64) {
	if !tk.Live() {
		return
	}
	tk.t.append(Event{Track: tk.id, Phase: PhaseInstant, Cat: cat, Name: name,
		TS: tk.t.now(), NArgs: 1, K1: k, V1: v})
}

// Begin opens an async span identified by (cat, id); the matching
// AsyncEnd may come from a different track — how a request published
// by the guest driver is closed by the device that completes it.
func (tk Track) Begin(cat, name string, id uint64) {
	if !tk.Live() {
		return
	}
	now := tk.t.now()
	tk.t.mu.Lock()
	tk.t.async[id] = asyncOpen{track: tk.id, cat: cat, name: name, start: now}
	tk.t.events = append(tk.t.events, Event{Track: tk.id, Phase: PhaseAsyncBegin,
		Cat: cat, Name: name, TS: now, ID: id})
	tk.t.mu.Unlock()
}

// AsyncEnd closes the async span opened with id and returns its
// virtual-time duration. Unknown ids (begun before tracing started, or
// never begun) return ok=false and record nothing.
func (tk Track) AsyncEnd(id uint64) (time.Duration, bool) {
	if !tk.Live() {
		return 0, false
	}
	now := tk.t.now()
	tk.t.mu.Lock()
	open, ok := tk.t.async[id]
	if !ok {
		tk.t.mu.Unlock()
		return 0, false
	}
	delete(tk.t.async, id)
	tk.t.events = append(tk.t.events, Event{Track: tk.id, Phase: PhaseAsyncEnd,
		Cat: open.cat, Name: open.name, TS: now, ID: id})
	tk.t.mu.Unlock()
	return now - open.start, true
}

// FlowBegin allocates a fleet-unique flow id, records the flow-begin
// event on this track, and makes the id the tracer's ambient flow so
// downstream hops (switch ports, bridges, the receiving device) can
// FlowStep/FlowEnd it without threading the id through their APIs.
// Returns the id; 0 (and no state change) while disabled.
func (tk Track) FlowBegin(cat, name string) uint64 {
	if !tk.Live() {
		return 0
	}
	id := tk.t.newFlowID()
	tk.t.append(Event{Track: tk.id, Phase: PhaseFlowBegin, Cat: cat, Name: name,
		TS: tk.t.now(), ID: id})
	tk.t.curFlow.Store(id)
	return id
}

// FlowStep records a flow step for the ambient flow on this track —
// one arrow waypoint. No-op when no flow is ambient or while disabled.
func (tk Track) FlowStep(cat, name string) {
	if !tk.Live() {
		return
	}
	id := tk.t.curFlow.Load()
	if id == 0 {
		return
	}
	tk.t.append(Event{Track: tk.id, Phase: PhaseFlowStep, Cat: cat, Name: name,
		TS: tk.t.now(), ID: id})
}

// FlowEnd terminates the ambient flow on this track and clears it.
// No-op when no flow is ambient or while disabled.
func (tk Track) FlowEnd(cat, name string) {
	if !tk.Live() {
		return
	}
	id := tk.t.curFlow.Load()
	if id == 0 {
		return
	}
	tk.t.append(Event{Track: tk.id, Phase: PhaseFlowEnd, Cat: cat, Name: name,
		TS: tk.t.now(), ID: id})
	tk.t.curFlow.Store(0)
}

// ClearFlow drops the tracer's ambient flow (frame handed off but
// never terminated — e.g. queued behind a bridge). Valid on the zero
// Track.
func (tk Track) ClearFlow() {
	if tk.t == nil {
		return
	}
	tk.t.curFlow.Store(0)
}

// FlowBeginQ allocates a flow id, records the begin event, and
// enqueues the id under key (FIFO) for FlowEndQ — the request-flow
// protocol between the two sides of a virtqueue, which share a tracer
// but no Go state. key is the queue's Avail GPA, identical in both
// views.
func (tk Track) FlowBeginQ(key uint64, cat, name string) {
	if !tk.Live() {
		return
	}
	id := tk.t.newFlowID()
	now := tk.t.now()
	tk.t.mu.Lock()
	tk.t.flowq[key] = append(tk.t.flowq[key], id)
	tk.t.events = append(tk.t.events, Event{Track: tk.id, Phase: PhaseFlowBegin,
		Cat: cat, Name: name, TS: now, ID: id})
	tk.t.mu.Unlock()
}

// FlowEndQ dequeues the oldest flow id under key and records its end
// event — the completing side of FlowBeginQ. An empty queue (flow
// begun before tracing started) records nothing.
func (tk Track) FlowEndQ(key uint64, cat, name string) {
	if !tk.Live() {
		return
	}
	now := tk.t.now()
	tk.t.mu.Lock()
	q := tk.t.flowq[key]
	if len(q) == 0 {
		tk.t.mu.Unlock()
		return
	}
	id := q[0]
	if len(q) == 1 {
		delete(tk.t.flowq, key)
	} else {
		tk.t.flowq[key] = q[1:]
	}
	tk.t.events = append(tk.t.events, Event{Track: tk.id, Phase: PhaseFlowEnd,
		Cat: cat, Name: name, TS: now, ID: id})
	tk.t.mu.Unlock()
}

// Span is one in-flight complete-span measurement. The zero value is
// disabled; every End variant on it is a no-op.
type Span struct {
	t     *Tracer
	track TrackID
	cat   string
	name  string
	start time.Duration
}

// End records the span.
func (s Span) End() {
	if s.t == nil || !s.t.enabled.Load() {
		return
	}
	s.t.append(Event{Track: s.track, Phase: PhaseSpan, Cat: s.cat, Name: s.name,
		TS: s.start, Dur: s.t.now() - s.start})
}

// End1 records the span with one typed argument.
func (s Span) End1(k string, v int64) {
	if s.t == nil || !s.t.enabled.Load() {
		return
	}
	s.t.append(Event{Track: s.track, Phase: PhaseSpan, Cat: s.cat, Name: s.name,
		TS: s.start, Dur: s.t.now() - s.start, NArgs: 1, K1: k, V1: v})
}

// End2 records the span with two typed arguments.
func (s Span) End2(k1 string, v1 int64, k2 string, v2 int64) {
	if s.t == nil || !s.t.enabled.Load() {
		return
	}
	s.t.append(Event{Track: s.track, Phase: PhaseSpan, Cat: s.cat, Name: s.name,
		TS: s.start, Dur: s.t.now() - s.start, NArgs: 2, K1: k1, V1: v1, K2: k2, V2: v2})
}
