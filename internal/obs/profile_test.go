package obs

import (
	"strings"
	"testing"
	"time"

	"vmsh/internal/vclock"
)

// profiledTracer records outer(100) { inner(30), inner(20) } on track
// "comp" plus a flat 40ns span on track "other".
func profiledTracer() *Tracer {
	clk := vclock.New()
	tr := New(clk)
	comp := tr.Track("comp")
	other := tr.Track("other")
	tr.Enable()

	outer := comp.Span("cat", "outer")
	clk.Advance(25)
	in1 := comp.Span("cat", "inner")
	clk.Advance(30)
	in1.End()
	in2 := comp.Span("cat", "inner")
	clk.Advance(20)
	in2.End()
	clk.Advance(25)
	outer.End()

	sp := other.Span("cat", "flat")
	clk.Advance(40)
	sp.End()
	return tr
}

func TestProfileSelfTimeAttribution(t *testing.T) {
	p := NewProfile()
	p.AddTracer("", profiledTracer())

	if p.Total() != 140 {
		t.Fatalf("total self = %v, want 140ns", p.Total())
	}
	want := map[string]time.Duration{
		"comp;cat:outer":           50, // 100 - 30 - 20
		"comp;cat:outer;cat:inner": 50, // 30 + 20 folded to one stack
		"other;cat:flat":           40,
	}
	if p.Len() != len(want) {
		t.Fatalf("have %d stacks, want %d: %+v", p.Len(), len(want), p.Top(0))
	}
	for _, e := range p.Top(0) {
		if want[e.Stack] != e.Self {
			t.Errorf("stack %q self=%v, want %v", e.Stack, e.Self, want[e.Stack])
		}
	}
}

func TestProfileComponentsAndTop(t *testing.T) {
	p := NewProfile()
	p.AddTracer("", profiledTracer())
	comps := p.Components()
	if len(comps) != 2 {
		t.Fatalf("components: %+v", comps)
	}
	if comps[0].Stack != "comp" || comps[0].Self != 100 {
		t.Fatalf("hottest component %+v, want comp/100ns", comps[0])
	}
	top := p.Top(1)
	if len(top) != 1 || top[0].Self != 50 {
		t.Fatalf("top(1) = %+v", top)
	}
}

func TestProfileFoldedDeterministic(t *testing.T) {
	render := func() string {
		p := NewProfile()
		p.AddTracer("", profiledTracer())
		var sb strings.Builder
		if err := p.WriteFolded(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("folded output not deterministic")
	}
	if !strings.Contains(a, "comp;cat:outer;cat:inner 50\n") {
		t.Fatalf("folded output missing expected stack line:\n%s", a)
	}
}

func TestProfileFromMergedTrace(t *testing.T) {
	tracers := []*Tracer{profiledTracer(), profiledTracer()}
	p := NewProfile()
	p.AddMerged(MergeShardTraces(tracers))
	if p.Total() != 280 {
		t.Fatalf("merged total = %v, want 280ns", p.Total())
	}
	comps := p.Components()
	if len(comps) != 2 || comps[0].Stack != "shard0" || comps[1].Stack != "shard1" {
		t.Fatalf("fleet components = %+v, want shard0/shard1", comps)
	}
	if comps[0].Self != 140 || comps[1].Self != 140 {
		t.Fatalf("per-shard self = %+v, want 140ns each", comps)
	}
}
