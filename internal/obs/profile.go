package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Profile is a virtual-time profile: every complete span's *self* time
// (duration minus nested child spans) attributed to its call stack,
// where a stack is the track name followed by the chain of enclosing
// span labels. Because durations are virtual, the profile answers
// "where does simulated time go" exactly — no sampling error, no
// wall-clock noise, byte-identical across runs.
type Profile struct {
	self  map[string]time.Duration
	total time.Duration
}

// NewProfile returns an empty profile; feed it with AddTracer /
// AddMerged.
func NewProfile() *Profile {
	return &Profile{self: make(map[string]time.Duration)}
}

// AddTracer folds every track of t into the profile. prefix, when
// non-empty, becomes the root frame of every stack (the fleet profiler
// passes "shard3" so per-shard attribution survives the merge).
func (p *Profile) AddTracer(prefix string, t *Tracer) {
	if t == nil {
		return
	}
	evs := t.Events()
	for i, name := range t.Tracks() {
		p.addForest(stackJoin(prefix, name), buildSpanForest(evs, TrackID(i)))
	}
}

// AddMerged folds a merged fleet trace, rooting each shard's stacks at
// "shard<N>".
func (p *Profile) AddMerged(m *MergedTrace) {
	for shard, st := range m.shards {
		root := "shard" + itoa(shard)
		for i, name := range st.tracks {
			p.addForest(stackJoin(root, name), buildSpanForest(st.events, TrackID(i)))
		}
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func stackJoin(prefix, frame string) string {
	if prefix == "" {
		return frame
	}
	return prefix + ";" + frame
}

// addForest walks one span forest, charging each node's self time
// (own duration minus direct children) to its stack.
func (p *Profile) addForest(stack string, nodes []*SpanNode) {
	for _, n := range nodes {
		s := stackJoin(stack, n.Cat+":"+n.Name)
		self := n.Dur
		for _, c := range n.Children {
			self -= c.Dur
		}
		if self < 0 {
			self = 0 // zero-dur parents with charged children
		}
		p.self[s] += self
		p.total += self
		p.addForest(s, n.Children)
	}
}

// Total returns the summed self time across all stacks.
func (p *Profile) Total() time.Duration { return p.total }

// Len returns the number of distinct stacks.
func (p *Profile) Len() int { return len(p.self) }

// StackEntry is one (stack, self-vtime) pair of a profile.
type StackEntry struct {
	Stack string
	Self  time.Duration
}

// sorted returns all entries by self time descending, ties broken by
// stack name — a total, deterministic order.
func (p *Profile) sorted() []StackEntry {
	out := make([]StackEntry, 0, len(p.self))
	for s, d := range p.self {
		out = append(out, StackEntry{Stack: s, Self: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// Top returns the n hottest stacks by self time (all of them when
// n <= 0 or n exceeds the stack count).
func (p *Profile) Top(n int) []StackEntry {
	out := p.sorted()
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Components aggregates self time by root frame (the track, or the
// shard in a fleet profile), sorted hottest-first.
func (p *Profile) Components() []StackEntry {
	agg := make(map[string]time.Duration)
	for s, d := range p.self {
		root := s
		if i := strings.IndexByte(s, ';'); i >= 0 {
			root = s[:i]
		}
		agg[root] += d
	}
	out := make([]StackEntry, 0, len(agg))
	for s, d := range agg {
		out = append(out, StackEntry{Stack: s, Self: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Stack < out[j].Stack
	})
	return out
}

// WriteFolded emits the profile in collapsed-stacks format — one
// "frame;frame;frame <ns>" line per stack, sorted by stack name — the
// input flamegraph.pl and speedscope consume directly. Deterministic:
// same simulation, same bytes.
func (p *Profile) WriteFolded(w io.Writer) error {
	entries := make([]StackEntry, 0, len(p.self))
	for s, d := range p.self {
		entries = append(entries, StackEntry{Stack: s, Self: d})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Stack < entries[j].Stack })
	var sb strings.Builder
	for _, e := range entries {
		sb.WriteString(e.Stack)
		sb.WriteByte(' ')
		fmt.Fprintf(&sb, "%d\n", int64(e.Self))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteTop renders a text report: per-component rollup followed by the
// top-n stacks, with percentages of total self vtime.
func (p *Profile) WriteTop(w io.Writer, n int) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vtime profile: %v self across %d stacks\n", p.total, len(p.self))
	sb.WriteString("\nby component:\n")
	for _, e := range p.Components() {
		fmt.Fprintf(&sb, "  %6.2f%%  %12v  %s\n", pct(e.Self, p.total), e.Self, e.Stack)
	}
	fmt.Fprintf(&sb, "\ntop %d stacks by self vtime:\n", n)
	for _, e := range p.Top(n) {
		fmt.Fprintf(&sb, "  %6.2f%%  %12v  %s\n", pct(e.Self, p.total), e.Self, e.Stack)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pct(part, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
