// Package blockdev defines the guest-facing block device contract and
// the host-native implementation used for baselines.
package blockdev

import (
	"fmt"

	"vmsh/internal/hostsim"
	"vmsh/internal/storage"
)

// SectorSize is the addressing granularity.
const SectorSize = 512

// Device is a byte-addressed block device; the contract now lives in
// internal/storage as BlockBackend (this alias keeps every existing
// implementation and caller source-compatible). Implementations
// charge their own costs to the virtual clock. Note for FUA: the
// virtio paths do not negotiate forced-unit-access, which is why
// quota persistence (and its three xfstests) fail there on both
// qemu-blk and vmsh-blk (§6.1).
type Device = storage.BlockBackend

// CheckAligned validates sector alignment of an access.
func CheckAligned(off int64, n int) error {
	if off%SectorSize != 0 || n%SectorSize != 0 {
		return fmt.Errorf("blockdev: unaligned access off=%d len=%d", off, n)
	}
	return nil
}

// HostFileDevice serves a device directly from a host file — the
// "native" baseline with no virtualisation in the path.
type HostFileDevice struct {
	F  *hostsim.HostFile
	qd int
	// FUA is supported by the NVMe-class device itself.
	fua bool
}

// NewHostFileDevice wraps a host file; direct files model the raw
// partition access the paper's native runs use.
func NewHostFileDevice(f *hostsim.HostFile) *HostFileDevice {
	return &HostFileDevice{F: f, qd: 1, fua: true}
}

// ReadAt implements Device.
func (d *HostFileDevice) ReadAt(off int64, buf []byte) error {
	if err := CheckAligned(off, len(buf)); err != nil {
		return err
	}
	return d.F.ReadAt(buf, off)
}

// WriteAt implements Device.
func (d *HostFileDevice) WriteAt(off int64, buf []byte) error {
	if err := CheckAligned(off, len(buf)); err != nil {
		return err
	}
	return d.F.WriteAt(buf, off)
}

// Flush implements Device.
func (d *HostFileDevice) Flush() error { return d.F.Fsync() }

// Size implements Device.
func (d *HostFileDevice) Size() int64 { return d.F.Size() }

// SupportsFUA implements Device.
func (d *HostFileDevice) SupportsFUA() bool { return d.fua }

// SetQueueDepth implements Device.
func (d *HostFileDevice) SetQueueDepth(qd int) {
	if qd < 1 {
		qd = 1
	}
	d.qd = qd
	d.F.DiskRef().QueueDepth = qd
}
