package blockdev

import (
	"bytes"
	"testing"

	"vmsh/internal/hostsim"
)

func TestCheckAligned(t *testing.T) {
	if err := CheckAligned(512, 1024); err != nil {
		t.Fatal(err)
	}
	if err := CheckAligned(100, 512); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if err := CheckAligned(0, 100); err == nil {
		t.Fatal("unaligned length accepted")
	}
}

func TestHostFileDevice(t *testing.T) {
	h := hostsim.NewHost()
	f := h.CreateFile("dev.img", 1<<20, true)
	d := NewHostFileDevice(f)
	if d.Size() != 1<<20 {
		t.Fatalf("size %d", d.Size())
	}
	if !d.SupportsFUA() {
		t.Fatal("native device must support FUA")
	}
	data := bytes.Repeat([]byte{0xAB}, 4096)
	if err := d.WriteAt(8192, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := d.ReadAt(8192, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip")
	}
	if err := d.WriteAt(100, data); err == nil {
		t.Fatal("unaligned write accepted")
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueDepthPropagates(t *testing.T) {
	h := hostsim.NewHost()
	f := h.CreateFile("dev.img", 1<<20, true)
	d := NewHostFileDevice(f)

	// At qd=1 a 4K read pays full latency; at qd=32 it is amortised.
	buf := make([]byte, 4096)
	d.SetQueueDepth(1)
	t0 := h.Clock.Now()
	_ = d.ReadAt(0, buf)
	slow := h.Clock.Since(t0)

	d.SetQueueDepth(32)
	t1 := h.Clock.Now()
	_ = d.ReadAt(4096, buf)
	fast := h.Clock.Since(t1)
	if fast >= slow {
		t.Fatalf("qd=32 (%v) not faster than qd=1 (%v)", fast, slow)
	}
	d.SetQueueDepth(0) // clamps to 1, no panic
}
