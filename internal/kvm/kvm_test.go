package kvm

import (
	"testing"

	"vmsh/internal/arch"
	"vmsh/internal/hostsim"
	"vmsh/internal/mem"
)

func newVM(t *testing.T) (*hostsim.Host, *hostsim.Process, *VM) {
	t.Helper()
	h := hostsim.NewHost()
	hyp := h.NewProcess("qemu", hostsim.Creds{UID: 1000, Caps: map[hostsim.Capability]bool{}})
	vm, _ := CreateVM(hyp, "vm0")
	// 16 MiB of guest RAM mapped into the hypervisor at a fixed HVA.
	ram := mem.NewPhys(0, 16<<20)
	m, err := hyp.AS.MapPhys(0x7f0000000000, ram, "guest-ram")
	if err != nil {
		t.Fatal(err)
	}
	vm.AddMemSlotDirect(0, 0, m.HVA, ram)
	return h, hyp, vm
}

func vmshProc(h *hostsim.Host) *hostsim.Process {
	return h.NewProcess("vmsh", hostsim.Creds{UID: 0, Caps: map[hostsim.Capability]bool{
		hostsim.CapSysPtrace: true, hostsim.CapBPF: true}})
}

func TestGuestMemRouting(t *testing.T) {
	_, hyp, vm := newVM(t)
	g := vm.GuestMem()
	if err := g.WritePhys(0x1000, []byte("in guest ram")); err != nil {
		t.Fatal(err)
	}
	// The hypervisor sees the same bytes through its mapping.
	buf := make([]byte, 12)
	if err := hyp.ReadMem(0x7f0000001000, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "in guest ram" {
		t.Fatalf("hypervisor view = %q", buf)
	}
	if err := g.ReadPhys(17<<20, make([]byte, 1)); err == nil {
		t.Fatal("read outside all slots succeeded")
	}
}

func TestMemSlotViaInjectedIoctl(t *testing.T) {
	h, hyp, vm := newVM(t)
	vmsh := vmshProc(h)
	tr, err := vmsh.Attach(hyp)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.InterruptAll()
	tid := hyp.MainThread()

	// 1. Inject an mmap for the new slot's backing memory.
	hva, err := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 1<<20, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	// 2. Write the kvm_userspace_memory_region struct into hypervisor
	// memory (via a second scratch mapping) and inject the ioctl.
	scratch, err := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 4096, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
	if err != nil {
		t.Fatal(err)
	}
	topGPA := uint64(16 << 20)
	st := make([]byte, 32)
	copy(st, []byte{9, 0, 0, 0, 0, 0, 0, 0}) // slot=9, flags=0
	copy(st[8:], hostsim.EncodeU64s(topGPA, 1<<20, hva))
	if err := h.ProcessVMWrite(vmsh, hyp.PID, mem.HVA(scratch), st); err != nil {
		t.Fatal(err)
	}
	// Find the vm fd through /proc like the sideloader does.
	var vmfd int = -1
	info, _ := h.ProcFDInfo(vmsh, hyp.PID)
	for _, fi := range info {
		if fi.Link == "anon_inode:kvm-vm" {
			vmfd = fi.Num
		}
	}
	if vmfd < 0 {
		t.Fatal("kvm-vm fd not discoverable via /proc")
	}
	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vmfd), KVMSetUserMemoryRegion, scratch); err != nil {
		t.Fatal(err)
	}

	// The new slot is now guest-visible: write through process_vm into
	// the hypervisor mapping, read back through guest physical space.
	if err := h.ProcessVMWrite(vmsh, hyp.PID, mem.HVA(hva), []byte("sideloaded")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if err := vm.GuestMem().ReadPhys(mem.GPA(topGPA), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "sideloaded" {
		t.Fatalf("guest sees %q", buf)
	}
}

func TestMemSlotOverlapRejected(t *testing.T) {
	h, hyp, _ := newVM(t)
	vmsh := vmshProc(h)
	tr, _ := vmsh.Attach(hyp)
	_ = tr.InterruptAll()
	tid := hyp.MainThread()
	hva, _ := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 1<<20, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
	scratch, _ := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 4096, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
	st := make([]byte, 32)
	copy(st[8:], hostsim.EncodeU64s(0 /* overlaps RAM at 0 */, 1<<20, hva))
	_ = h.ProcessVMWrite(vmsh, hyp.PID, mem.HVA(scratch), st)
	var vmfd int
	info, _ := h.ProcFDInfo(vmsh, hyp.PID)
	for _, fi := range info {
		if fi.Link == "anon_inode:kvm-vm" {
			vmfd = fi.Num
		}
	}
	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vmfd), KVMSetUserMemoryRegion, scratch); err == nil {
		t.Fatal("overlapping memslot accepted")
	}
}

func TestVCPURegsIoctlRoundTrip(t *testing.T) {
	h, hyp, vm := newVM(t)
	vcpu, vcpufd := vm.NewVCPU()
	vcpu.SetRegs(hostsim.Regs{RIP: 0xffffffff81000000, RSP: 0x8000})
	vcpu.SetSregs(Sregs{CR3: 0x2000})

	vmsh := vmshProc(h)
	tr, _ := vmsh.Attach(hyp)
	_ = tr.InterruptAll()
	tid := hyp.MainThread()
	buf, _ := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 4096, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))

	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vcpufd), KVMGetRegs, buf); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, RegsStructSize(arch.X86_64))
	_ = h.ProcessVMRead(vmsh, hyp.PID, mem.HVA(buf), raw)
	if hostsim.DecodeU64(raw, 16) != 0xffffffff81000000 {
		t.Fatalf("rip via ioctl = %#x", hostsim.DecodeU64(raw, 16))
	}

	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vcpufd), KVMGetSregs, buf); err != nil {
		t.Fatal(err)
	}
	sraw := make([]byte, SregsStructSize)
	_ = h.ProcessVMRead(vmsh, hyp.PID, mem.HVA(buf), sraw)
	if hostsim.DecodeU64(sraw, PageTableRootOffset(arch.X86_64)/8) != 0x2000 {
		t.Fatal("cr3 not at the documented offset")
	}

	// SET_REGS: hijack RIP.
	raw2 := make([]byte, RegsStructSize(arch.X86_64))
	copy(raw2, raw)
	copy(raw2[16*8:], hostsim.EncodeU64s(0x4242))
	_ = h.ProcessVMWrite(vmsh, hyp.PID, mem.HVA(buf), raw2)
	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vcpufd), KVMSetRegs, buf); err != nil {
		t.Fatal(err)
	}
	if vcpu.GetRegs().RIP != 0x4242 {
		t.Fatalf("rip after SET_REGS = %#x", vcpu.GetRegs().RIP)
	}
}

func TestIrqfdViaInjectedIoctl(t *testing.T) {
	h, hyp, vm := newVM(t)
	var delivered []uint32
	vm.SetIRQHandler(func(gsi uint32) { delivered = append(delivered, gsi) })

	vmsh := vmshProc(h)
	tr, _ := vmsh.Attach(hyp)
	_ = tr.InterruptAll()
	tid := hyp.MainThread()

	evfd, _ := tr.InjectSyscall(tid, hostsim.SysEventfd2, 0, 0)
	scratch, _ := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 4096, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
	st := make([]byte, 16)
	copy(st, []byte{byte(evfd), 0, 0, 0, 7, 0, 0, 0}) // fd, gsi=7
	_ = h.ProcessVMWrite(vmsh, hyp.PID, mem.HVA(scratch), st)
	var vmfd int
	info, _ := h.ProcFDInfo(vmsh, hyp.PID)
	for _, fi := range info {
		if fi.Link == "anon_inode:kvm-vm" {
			vmfd = fi.Num
		}
	}
	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vmfd), KVMIrqfd, scratch); err != nil {
		t.Fatal(err)
	}

	// Signal the eventfd from the hypervisor context: interrupt fires.
	fd, _ := hyp.FD(int(evfd))
	fd.(*hostsim.EventFD).Signal(1)
	if len(delivered) != 1 || delivered[0] != 7 {
		t.Fatalf("delivered = %v", delivered)
	}
}

type recordingHandler struct {
	calls []mem.GPA
	ret   uint64
}

func (r *recordingHandler) MMIO(gpa mem.GPA, size int, write bool, value uint64) uint64 {
	r.calls = append(r.calls, gpa)
	return r.ret
}

func TestMMIODispatchHypervisorRegion(t *testing.T) {
	h, _, vm := newVM(t)
	dev := &recordingHandler{ret: 0x55}
	vm.RegisterMMIO(0xd0000000, 0x200, dev, "qemu-blk")
	if got := vm.MMIORead(0xd0000010, 4); got != 0x55 {
		t.Fatalf("read = %#x", got)
	}
	vm.MMIOWrite(0xd0000050, 4, 1)
	if len(dev.calls) != 2 {
		t.Fatalf("handler called %d times", len(dev.calls))
	}
	if vm.ExitsTotal != 2 || vm.ExitsToExternal != 0 {
		t.Fatalf("exit counters: %d/%d", vm.ExitsTotal, vm.ExitsToExternal)
	}
	// Unclaimed MMIO floats high.
	if got := vm.MMIORead(0xe0000000, 4); got != ^uint64(0) {
		t.Fatalf("unclaimed read = %#x", got)
	}
	_ = h
}

func TestMMIODispatchIoregionfd(t *testing.T) {
	h, hyp, vm := newVM(t)
	// Build the socketpair inside the hypervisor as the sideloader
	// would, register one end as an ioregion and serve the other.
	vmsh := vmshProc(h)
	tr, _ := vmsh.Attach(hyp)
	_ = tr.InterruptAll()
	tid := hyp.MainThread()
	scratch, _ := tr.InjectSyscall(tid, hostsim.SysMmap, 0, 4096, 3, hostsim.MapAnonymous|hostsim.MapPrivate, ^uint64(0))
	if _, err := tr.InjectSyscall(tid, hostsim.SysSocketpair, 1, 1, 0, scratch); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 8)
	_ = h.ProcessVMRead(vmsh, hyp.PID, mem.HVA(scratch), raw)
	rfd := uint64(uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24)

	st := make([]byte, 40)
	copy(st, hostsim.EncodeU64s(0xd1000000, 0x200, 0))
	st[24] = byte(rfd)
	_ = h.ProcessVMWrite(vmsh, hyp.PID, mem.HVA(scratch+64), st)
	var vmfd int
	info, _ := h.ProcFDInfo(vmsh, hyp.PID)
	for _, fi := range info {
		if fi.Link == "anon_inode:kvm-vm" {
			vmfd = fi.Num
		}
	}
	if _, err := tr.InjectSyscall(tid, hostsim.SysIoctl, uint64(vmfd), KVMSetIoregion, scratch+64); err != nil {
		t.Fatal(err)
	}
	// The peer end would be passed back over the unix socket; here we
	// grab it directly for the dispatch test and attach a handler.
	fd, _ := hyp.FD(int(rfd))
	peer := fd.(*hostsim.SockPairFD).Peer
	dev := &recordingHandler{ret: 0x99}
	peer.SetHandler(kvmHandler{dev})
	_ = tr.Detach()

	if got := vm.MMIORead(0xd1000004, 4); got != 0x99 {
		t.Fatalf("ioregion read = %#x", got)
	}
	if vm.ExitsToExternal != 1 {
		t.Fatalf("external exits = %d", vm.ExitsToExternal)
	}
}

// kvmHandler adapts recordingHandler to the MMIOHandler interface for
// the socket peer (interface value stored as any).
type kvmHandler struct{ h MMIOHandler }

func (k kvmHandler) MMIO(gpa mem.GPA, size int, write bool, value uint64) uint64 {
	return k.h.MMIO(gpa, size, write, value)
}

func TestWrapTrapTaxesAllExits(t *testing.T) {
	h, hyp, vm := newVM(t)
	qemuDev := &recordingHandler{}
	vm.RegisterMMIO(0xd0000000, 0x200, qemuDev, "qemu-blk")

	before := h.Clock.Now()
	vm.MMIORead(0xd0000000, 4)
	plain := h.Clock.Since(before)

	vmshDev := &recordingHandler{}
	vmsh := vmshProc(h)
	tr, _ := vmsh.Attach(hyp)
	tr.SetSyscallTax(true)
	vm.SetWrapTrap(0xd1000000, 0x200, vmshDev)

	// The hypervisor's own device now pays ptrace stops on its exits.
	before = h.Clock.Now()
	vm.MMIORead(0xd0000000, 4)
	taxed := h.Clock.Since(before)
	if taxed != plain+2*h.Costs.PtraceStop {
		t.Fatalf("qemu-blk exit under wrap trap: %v vs %v", taxed, plain)
	}
	// And the trapped region is routed to the external handler.
	vm.MMIORead(0xd1000008, 4)
	if len(vmshDev.calls) != 1 {
		t.Fatal("wrap trap did not route")
	}
	if vm.ExitsToExternal != 1 {
		t.Fatalf("external exits = %d", vm.ExitsToExternal)
	}
}

func TestKprobeSeesMemslots(t *testing.T) {
	h, hyp, vm := newVM(t)
	_ = vm
	vmsh := vmshProc(h)
	var snap []MemSlotInfo
	_, err := h.AttachKProbe(vmsh, "kvm_vm_ioctl", func(d any) {
		if s, ok := d.([]MemSlotInfo); ok {
			snap = s
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := vmsh.Attach(hyp)
	_ = tr.InterruptAll()
	var vmfd int
	info, _ := h.ProcFDInfo(vmsh, hyp.PID)
	for _, fi := range info {
		if fi.Link == "anon_inode:kvm-vm" {
			vmfd = fi.Num
		}
	}
	if _, err := tr.InjectSyscall(hyp.MainThread(), hostsim.SysIoctl, uint64(vmfd), KVMCheckExtension, 0); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0].HVA != 0x7f0000000000 || snap[0].Size != 16<<20 {
		t.Fatalf("kprobe snapshot = %+v", snap)
	}
}
