package kvm

import (
	"encoding/binary"
	"fmt"

	"vmsh/internal/arch"
	"vmsh/internal/hostsim"
	"vmsh/internal/mem"
)

// VMFD is the /dev/kvm VM file descriptor.
type VMFD struct{ VM *VM }

// ProcLink implements hostsim.FD; the sideloader greps for this.
func (f *VMFD) ProcLink() string { return "anon_inode:kvm-vm" }

// Ioctl implements hostsim.IoctlFD for the VM fd. Structs are
// exchanged as packed little-endian bytes through the calling
// process's memory, like the real API.
func (f *VMFD) Ioctl(p *hostsim.Process, cmd uint64, arg uint64) (uint64, error) {
	vm := f.VM
	// The eBPF probe VMSH attaches to kvm_vm_ioctl sees every VM
	// ioctl along with the current memslot table.
	vm.host.FireKProbe("kvm_vm_ioctl", vm.slotInfo())

	switch cmd {
	case KVMCheckExtension:
		return 1, nil

	case KVMSetUserMemoryRegion:
		// struct kvm_userspace_memory_region:
		//   u32 slot; u32 flags; u64 guest_phys_addr;
		//   u64 memory_size; u64 userspace_addr;
		var buf [32]byte
		if err := p.ReadMem(mem.HVA(arg), buf[:]); err != nil {
			return 0, err
		}
		slot := binary.LittleEndian.Uint32(buf[0:])
		gpa := mem.GPA(binary.LittleEndian.Uint64(buf[8:]))
		size := binary.LittleEndian.Uint64(buf[16:])
		hva := mem.HVA(binary.LittleEndian.Uint64(buf[24:]))

		if size == 0 {
			// Real KVM semantics: memory_size 0 deletes the numbered
			// slot. VMSH's rollback path uses this to take its library
			// slot back out of the guest physical space.
			vm.mu.Lock()
			defer vm.mu.Unlock()
			for i, s := range vm.memslots {
				if s.Slot == slot {
					vm.memslots = append(vm.memslots[:i], vm.memslots[i+1:]...)
					if vm.dirty != nil {
						s.Phys.SetWriteHook(nil)
						vm.dirty.mu.Lock()
						delete(vm.dirty.pages, slot)
						delete(vm.dirty.armed, slot)
						vm.dirty.mu.Unlock()
					}
					return 0, nil
				}
			}
			return 0, fmt.Errorf("%w: no memslot %d to delete", hostsim.ErrInval, slot)
		}

		m, ok := p.AS.Find(hva)
		if !ok {
			return 0, fmt.Errorf("%w: userspace_addr %#x not mapped", hostsim.ErrFault, hva)
		}
		if m.HVA != hva || m.Size < size {
			return 0, fmt.Errorf("%w: memslot must cover a whole mapping", hostsim.ErrInval)
		}
		vm.mu.Lock()
		for _, s := range vm.memslots {
			if gpa < s.GPA+mem.GPA(s.Size) && s.GPA < gpa+mem.GPA(size) {
				vm.mu.Unlock()
				return 0, fmt.Errorf("%w: memslot overlaps slot %d", hostsim.ErrInval, s.Slot)
			}
		}
		ns := &MemSlot{Slot: slot, GPA: gpa, Size: size, HVA: hva, Phys: m.Phys}
		vm.memslots = append(vm.memslots, ns)
		if vm.dirty != nil {
			vm.dirty.arm(ns)
		}
		vm.mu.Unlock()
		return 0, nil

	case KVMIrqfd:
		// struct kvm_irqfd: u32 fd; u32 gsi; u32 flags; u32 pad.
		var buf [16]byte
		if err := p.ReadMem(mem.HVA(arg), buf[:]); err != nil {
			return 0, err
		}
		fdnum := int(binary.LittleEndian.Uint32(buf[0:]))
		gsi := binary.LittleEndian.Uint32(buf[4:])
		flags := binary.LittleEndian.Uint32(buf[8:])
		if vm.IRQChipMSIXOnly && flags&IrqfdFlagMSI == 0 {
			// Cloud Hypervisor routes every interrupt through PCIe
			// MSI-X; legacy gsi lines do not exist (Table 1's
			// unsupported case). An MSI-routed registration works.
			return 0, fmt.Errorf("%w: gsi irqfd routing unavailable (MSI-X only irqchip)", hostsim.ErrInval)
		}
		fd, err := p.FD(fdnum)
		if err != nil {
			return 0, err
		}
		ev, ok := fd.(*hostsim.EventFD)
		if !ok {
			return 0, hostsim.ErrInval
		}
		ev.Subscribe(func() { vm.InjectIRQ(gsi) })
		return 0, nil

	case KVMSetIoregion:
		if vm.host.NoIoregionfd {
			// Host kernel without the ioregionfd patch (§5): the
			// ioctl number is simply unknown.
			return 0, fmt.Errorf("%w: KVM_SET_IOREGION", hostsim.ErrNoSys)
		}
		// Proposed struct kvm_ioregion: u64 guest_paddr; u64 memory_size;
		// u64 user_data; u32 rfd; u32 wfd; u32 flags; u32 pad.
		var buf [40]byte
		if err := p.ReadMem(mem.HVA(arg), buf[:]); err != nil {
			return 0, err
		}
		gpa := mem.GPA(binary.LittleEndian.Uint64(buf[0:]))
		size := binary.LittleEndian.Uint64(buf[8:])
		rfd := int(binary.LittleEndian.Uint32(buf[24:]))
		fd, err := p.FD(rfd)
		if err != nil {
			return 0, err
		}
		sock, ok := fd.(*hostsim.SockPairFD)
		if !ok {
			return 0, hostsim.ErrInval
		}
		vm.mu.Lock()
		vm.ioregions = append(vm.ioregions, &ioregion{start: gpa, size: size, sock: sock})
		vm.mu.Unlock()
		return 0, nil

	default:
		return 0, fmt.Errorf("%w: vm ioctl %#x", hostsim.ErrNoSys, cmd)
	}
}

// VCPUFD is a vCPU file descriptor.
type VCPUFD struct{ VCPU *VCPU }

// ProcLink implements hostsim.FD.
func (f *VCPUFD) ProcLink() string {
	return fmt.Sprintf("anon_inode:kvm-vcpu:%d", f.VCPU.Index)
}

// packRegs encodes the architecture's kvm_regs struct: 18 u64 on
// x86-64 (field order of struct kvm_regs), 34 u64 on arm64 (struct
// user_pt_regs: x0..x30, sp, pc, pstate).
func packRegs(a arch.Arch, r hostsim.Regs) []byte {
	if a == arch.ARM64 {
		vals := make([]uint64, 34)
		copy(vals, r.X[:])
		vals[31], vals[32], vals[33] = r.SP, r.PC, r.PSTATE
		return hostsim.EncodeU64s(vals...)
	}
	return hostsim.EncodeU64s(
		r.RAX, r.RBX, r.RCX, r.RDX,
		r.RSI, r.RDI, r.RSP, r.RBP,
		r.R8, r.R9, r.R10, r.R11,
		r.R12, r.R13, r.R14, r.R15,
		r.RIP, r.RFLAGS,
	)
}

func unpackRegs(a arch.Arch, b []byte) hostsim.Regs {
	g := func(i int) uint64 { return hostsim.DecodeU64(b, i) }
	if a == arch.ARM64 {
		var r hostsim.Regs
		for i := 0; i < 31; i++ {
			r.X[i] = g(i)
		}
		r.SP, r.PC, r.PSTATE = g(31), g(32), g(33)
		return r
	}
	return hostsim.Regs{
		RAX: g(0), RBX: g(1), RCX: g(2), RDX: g(3),
		RSI: g(4), RDI: g(5), RSP: g(6), RBP: g(7),
		R8: g(8), R9: g(9), R10: g(10), R11: g(11),
		R12: g(12), R13: g(13), R14: g(14), R15: g(15),
		RIP: g(16), RFLAGS: g(17),
	}
}

// RegsStructSize is the byte size of the packed kvm_regs struct.
func RegsStructSize(a arch.Arch) int {
	if a == arch.ARM64 {
		return 34 * 8
	}
	return 18 * 8
}

// InstrPtrIndex is the u64 index of the instruction pointer inside the
// packed regs struct (RIP on x86-64, PC on arm64).
func InstrPtrIndex(a arch.Arch) int {
	if a == arch.ARM64 {
		return 32
	}
	return 16
}

// SregsStructSize is the byte size of the packed (reduced) kvm_sregs;
// both architectures pack into 7 u64 here.
const SregsStructSize = 7 * 8

// PageTableRootOffset is where the page-table base register sits in
// the packed sregs struct (CR3 on x86-64, TTBR0_EL1 on arm64); the
// sideloader reads it to find the guest page tables.
func PageTableRootOffset(a arch.Arch) int {
	if a == arch.ARM64 {
		return 8 // [SCTLR, TTBR0, TTBR1, TCR, MAIR, 0, 0]
	}
	return 16 // [CR0, CR2, CR3, CR4, CR8, EFER, ApicBase]
}

// Ioctl implements hostsim.IoctlFD for vCPU fds.
func (f *VCPUFD) Ioctl(p *hostsim.Process, cmd uint64, arg uint64) (uint64, error) {
	v := f.VCPU
	a := v.vm.Arch()
	switch cmd {
	case KVMGetRegs:
		return 0, p.WriteMem(mem.HVA(arg), packRegs(a, v.GetRegs()))
	case KVMSetRegs:
		buf := make([]byte, RegsStructSize(a))
		if err := p.ReadMem(mem.HVA(arg), buf); err != nil {
			return 0, err
		}
		v.SetRegs(unpackRegs(a, buf))
		return 0, nil
	case KVMGetSregs:
		s := v.GetSregs()
		if a == arch.ARM64 {
			return 0, p.WriteMem(mem.HVA(arg), hostsim.EncodeU64s(
				s.SCTLR, s.TTBR0, s.TTBR1, s.TCR, 0, 0, 0))
		}
		return 0, p.WriteMem(mem.HVA(arg), hostsim.EncodeU64s(
			s.CR0, s.CR2, s.CR3, s.CR4, s.CR8, s.EFER, s.ApicBase))
	case KVMRun:
		if v.vm.executor == nil {
			return 0, fmt.Errorf("%w: no guest executor", hostsim.ErrInval)
		}
		v.vm.executor.RunGuest(v)
		return 0, nil
	default:
		return 0, fmt.Errorf("%w: vcpu ioctl %#x", hostsim.ErrNoSys, cmd)
	}
}
