// Package kvm simulates the Linux KVM kernel API at the surface VMSH
// consumes: VM and vCPU file descriptors with binary ioctl structs,
// user memory slots aliasing hypervisor mappings, MMIO exit dispatch,
// irqfd interrupt routing and the (at paper time, proposed) ioregionfd
// fast MMIO path.
//
// The hypervisor personalities in internal/hypervisor own these fds;
// VMSH reaches them only through injected ioctls and /proc discovery.
package kvm

import (
	"fmt"
	"sort"
	"sync"

	"vmsh/internal/arch"
	"vmsh/internal/faults"
	"vmsh/internal/hostsim"
	"vmsh/internal/mem"
	"vmsh/internal/obs"
)

// ioctl command numbers. The values are stand-ins but the calling
// convention (binary structs through userspace pointers) matches the
// real API.
const (
	KVMCheckExtension      = 0xAE03
	KVMSetUserMemoryRegion = 0xAE46
	KVMIrqfd               = 0xAE76
	KVMSetIoregion         = 0xAE49 // the ioregionfd proposal
	KVMRun                 = 0xAE80
	KVMGetRegs             = 0xAE81
	KVMSetRegs             = 0xAE82
	KVMGetSregs            = 0xAE83
)

// IrqfdFlagMSI marks an irqfd registration as carrying an MSI message
// route rather than a legacy gsi line — the path PCIe MSI-X interrupt
// delivery uses, and the only one a Cloud Hypervisor VM accepts.
const IrqfdFlagMSI = 1 << 2

// Sregs is the simulated special register file: a reduced kvm_sregs
// on x86-64, and the translation-control system registers on arm64
// (TTBR0_EL1 plays CR3's role of pointing at the page table root).
type Sregs struct {
	// x86_64
	CR0, CR2, CR3, CR4, CR8 uint64
	EFER, ApicBase          uint64
	// arm64
	SCTLR, TTBR0, TTBR1, TCR uint64
}

// PageTableRoot returns the architecture's page-table base register.
func (s Sregs) PageTableRoot(a arch.Arch) uint64 {
	if a == arch.ARM64 {
		return s.TTBR0
	}
	return s.CR3
}

// MemSlot is one guest physical memory slot.
type MemSlot struct {
	Slot uint32
	GPA  mem.GPA
	Size uint64
	HVA  mem.HVA
	Phys *mem.Phys
}

// MemSlotInfo is the kprobe payload VMSH's eBPF program reads from
// kvm_vm_ioctl's arguments.
type MemSlotInfo struct {
	Slot uint32
	GPA  mem.GPA
	Size uint64
	HVA  mem.HVA
}

// Executor runs guest code. internal/guestos installs one per VM; it
// is invoked from KVM_RUN and must return when the guest goes idle.
type Executor interface {
	// RunGuest executes from the vCPU's current register state,
	// handling any pending interrupts and hijacked RIP, until idle.
	RunGuest(v *VCPU)
}

// MMIOHandler serves device register accesses.
type MMIOHandler interface {
	// MMIO performs a register access of size bytes at gpa. For
	// reads the return value carries the data.
	MMIO(gpa mem.GPA, size int, write bool, value uint64) uint64
}

type mmioRegion struct {
	start mem.GPA
	size  uint64
	h     MMIOHandler
	name  string
}

func (r *mmioRegion) contains(gpa mem.GPA) bool {
	return gpa >= r.start && gpa < r.start+mem.GPA(r.size)
}

// VM is one virtual machine.
type VM struct {
	host  *hostsim.Host
	owner *hostsim.Process
	Name  string

	// IRQChipMSIXOnly models hypervisors (Cloud Hypervisor) that
	// route all interrupts through PCIe MSI-X: the gsi-based irqfd
	// registration VMSH's MMIO transport needs is unavailable, which
	// is exactly why Table 1 lists Cloud Hypervisor as unsupported.
	IRQChipMSIXOnly bool

	mu         sync.Mutex
	memslots   []*MemSlot
	vcpus      []*VCPU
	regions    []*mmioRegion // hypervisor-emulated devices
	ioregions  []*ioregion   // ioregionfd-routed regions (external)
	wrap       *wrapTrap     // ptrace-based external trap
	executor   Executor
	irqHandler func(gsi uint32)
	dirty      *dirtyTracker // non-nil while dirty-page logging is on

	// Counters for the evaluation harness.
	ExitsTotal      int64
	ExitsToExternal int64

	trVCPU     obs.Track // "vcpu:<name>" — exits and injected IRQs
	ctrExits   *obs.Counter
	ctrInjects *obs.Counter
}

// wrapTrap is installed by internal/trap when VMSH uses the ptrace
// MMIO path: the tracer inspects every KVM_RUN exit.
type wrapTrap struct {
	start mem.GPA
	size  uint64
	h     MMIOHandler
}

type ioregion struct {
	start mem.GPA
	size  uint64
	sock  *hostsim.SockPairFD // hypervisor-side end; handler lives on peer
}

// CreateVM makes a VM owned by proc and installs its fd.
func CreateVM(proc *hostsim.Process, name string) (*VM, int) {
	vm := &VM{host: proc.Host(), owner: proc, Name: name}
	vm.trVCPU = vm.host.Trace.Track("vcpu:" + name)
	vm.ctrExits = vm.host.Metrics.Counter("kvm.exits")
	vm.ctrInjects = vm.host.Metrics.Counter("kvm.irq_injects")
	fd := proc.InstallFD(&VMFD{VM: vm})
	return vm, fd
}

// Owner returns the hypervisor process.
func (vm *VM) Owner() *hostsim.Process { return vm.owner }

// Arch returns the VM's architecture (the hypervisor process's).
func (vm *VM) Arch() arch.Arch { return vm.owner.Arch }

// Host returns the host.
func (vm *VM) Host() *hostsim.Host { return vm.host }

// SetExecutor installs the guest executor (guestos).
func (vm *VM) SetExecutor(e Executor) { vm.executor = e }

// SetIRQHandler installs the guest interrupt entry point.
func (vm *VM) SetIRQHandler(fn func(gsi uint32)) { vm.irqHandler = fn }

// AddMemSlotDirect installs a memory slot without going through the
// ioctl path; hypervisors use it at construction time (they own the
// VM, no injection involved).
func (vm *VM) AddMemSlotDirect(slot uint32, gpa mem.GPA, hva mem.HVA, phys *mem.Phys) *MemSlot {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	s := &MemSlot{Slot: slot, GPA: gpa, Size: phys.Size(), HVA: hva, Phys: phys}
	vm.memslots = append(vm.memslots, s)
	if vm.dirty != nil {
		vm.dirty.arm(s)
	}
	return s
}

// dirtyTracker accumulates per-slot dirty page indices, fed by the
// write hooks it arms on each memslot's backing slab — the simulated
// equivalent of KVM_MEM_LOG_DIRTY_PAGES + KVM_GET_DIRTY_LOG, which is
// what live migration's pre-copy rounds poll.
type dirtyTracker struct {
	mu    sync.Mutex
	pages map[uint32]map[uint64]bool // slot -> dirty page index set
	armed map[uint32]*mem.Phys       // slabs whose hook we own
}

// arm installs the write hook on one slot's slab. Caller holds vm.mu.
func (t *dirtyTracker) arm(s *MemSlot) {
	t.mu.Lock()
	if _, ok := t.pages[s.Slot]; !ok {
		t.pages[s.Slot] = make(map[uint64]bool)
	}
	t.armed[s.Slot] = s.Phys
	t.mu.Unlock()
	slot, base := s.Slot, s.Phys.Base
	s.Phys.SetWriteHook(func(gpa mem.GPA, n int) {
		t.mu.Lock()
		set := t.pages[slot]
		for p := uint64(gpa-base) / mem.PageSize; p <= (uint64(gpa-base)+uint64(n)-1)/mem.PageSize; p++ {
			set[p] = true
		}
		t.mu.Unlock()
	})
}

// StartDirtyTracking begins logging guest-physical stores: every write
// into any memslot's slab — guest kernel, device DMA, process_vm
// injection — marks its 4KiB page dirty. Slots added while tracking is
// active (the vmsh library slot, say) are tracked from their first
// byte. Idempotent; tracking adds no virtual-time cost.
func (vm *VM) StartDirtyTracking() {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.dirty != nil {
		return
	}
	vm.dirty = &dirtyTracker{
		pages: make(map[uint32]map[uint64]bool),
		armed: make(map[uint32]*mem.Phys),
	}
	for _, s := range vm.memslots {
		vm.dirty.arm(s)
	}
}

// DirtyLog snapshots the dirty page indices per slot, sorted ascending
// — the KVM_GET_DIRTY_LOG read-and-clear cycle when clear is true.
// Returns nil when tracking is off.
func (vm *VM) DirtyLog(clear bool) map[uint32][]uint64 {
	vm.mu.Lock()
	t := vm.dirty
	vm.mu.Unlock()
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[uint32][]uint64, len(t.pages))
	for slot, set := range t.pages {
		idxs := make([]uint64, 0, len(set))
		for p := range set {
			idxs = append(idxs, p)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		out[slot] = idxs
		if clear {
			t.pages[slot] = make(map[uint64]bool)
		}
	}
	return out
}

// StopDirtyTracking disarms every write hook and drops the log.
func (vm *VM) StopDirtyTracking() {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if vm.dirty == nil {
		return
	}
	vm.dirty.mu.Lock()
	for _, p := range vm.dirty.armed {
		p.SetWriteHook(nil)
	}
	vm.dirty.mu.Unlock()
	vm.dirty = nil
}

// MemSlots snapshots the slot list.
func (vm *VM) MemSlots() []*MemSlot {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]*MemSlot, len(vm.memslots))
	copy(out, vm.memslots)
	return out
}

// slotInfo builds the kprobe payload.
func (vm *VM) slotInfo() []MemSlotInfo {
	var out []MemSlotInfo
	for _, s := range vm.MemSlots() {
		out = append(out, MemSlotInfo{Slot: s.Slot, GPA: s.GPA, Size: s.Size, HVA: s.HVA})
	}
	return out
}

// NewVCPU creates a vCPU and installs its fd in the owner's table.
func (vm *VM) NewVCPU() (*VCPU, int) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	v := &VCPU{vm: vm, Index: len(vm.vcpus)}
	vm.vcpus = append(vm.vcpus, v)
	fd := vm.owner.InstallFD(&VCPUFD{VCPU: v})
	return v, fd
}

// VCPUs snapshots the vCPU list.
func (vm *VM) VCPUs() []*VCPU {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]*VCPU, len(vm.vcpus))
	copy(out, vm.vcpus)
	return out
}

// RegisterMMIO adds a hypervisor-emulated device region.
func (vm *VM) RegisterMMIO(start mem.GPA, size uint64, h MMIOHandler, name string) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	vm.regions = append(vm.regions, &mmioRegion{start: start, size: size, h: h, name: name})
}

// SetWrapTrap installs (or clears, with h == nil) the ptrace MMIO trap.
func (vm *VM) SetWrapTrap(start mem.GPA, size uint64, h MMIOHandler) {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if h == nil {
		vm.wrap = nil
		return
	}
	vm.wrap = &wrapTrap{start: start, size: size, h: h}
}

// GuestMem returns a PhysIO view over all memory slots; this is what
// the guest kernel (and the library interpreter) use for physical
// access, so VMSH's top-of-memory slot is visible the moment the
// injected SET_USER_MEMORY_REGION lands.
func (vm *VM) GuestMem() mem.PhysIO { return guestMem{vm} }

type guestMem struct{ vm *VM }

func (g guestMem) slotFor(gpa mem.GPA, n int) (*MemSlot, error) {
	for _, s := range g.vm.MemSlots() {
		if gpa >= s.GPA && uint64(gpa-s.GPA)+uint64(n) <= s.Size {
			return s, nil
		}
	}
	return nil, fmt.Errorf("kvm: gpa [%#x,+%d) not backed by any memslot", gpa, n)
}

func (g guestMem) ReadPhys(gpa mem.GPA, buf []byte) error {
	s, err := g.slotFor(gpa, len(buf))
	if err != nil {
		return err
	}
	s.Phys.ReadAt(s.Phys.Base+mem.GPA(gpa-s.GPA), buf)
	return nil
}

func (g guestMem) WritePhys(gpa mem.GPA, buf []byte) error {
	s, err := g.slotFor(gpa, len(buf))
	if err != nil {
		return err
	}
	s.Phys.WriteAt(s.Phys.Base+mem.GPA(gpa-s.GPA), buf)
	return nil
}

// InjectIRQ delivers a guest interrupt on gsi (irqfd path).
func (vm *VM) InjectIRQ(gsi uint32) {
	vm.host.Clock.Advance(vm.host.Costs.IRQInject)
	vm.ctrInjects.Inc()
	vm.trVCPU.Event1("irq", "inject", "gsi", int64(gsi))
	if vm.irqHandler != nil {
		vm.irqHandler(gsi)
	}
}

// MMIORead performs a guest-initiated MMIO load, paying the full exit
// dispatch path; MMIOWrite is the store counterpart.
func (vm *VM) MMIORead(gpa mem.GPA, size int) uint64 {
	return vm.dispatchMMIO(gpa, size, false, 0)
}

// MMIOWrite performs a guest-initiated MMIO store.
func (vm *VM) MMIOWrite(gpa mem.GPA, size int, value uint64) {
	vm.dispatchMMIO(gpa, size, true, value)
}

// dispatchMMIO is the heart of the exit economics in §6.3:
//
//   - every access pays a VM exit;
//   - with the wrap_syscall trap attached, every exit additionally
//     pays ptrace stops because the tracer must inspect it — even
//     accesses belonging to the hypervisor's own devices (this is why
//     qemu-blk degrades under the ptrace trap);
//   - ioregionfd-routed regions pay one socket message and a context
//     switch into the external VMSH process, and — crucially —
//     unrelated exits pay nothing extra because the kernel filters;
//   - hypervisor-emulated regions pay the usual return to userspace.
func (vm *VM) dispatchMMIO(gpa mem.GPA, size int, write bool, value uint64) uint64 {
	ret := vm.dispatchMMIOInner(gpa, size, write, value)
	// Tap-only "kvm:mmio" crossing (never fault-checked): one record
	// per exit so replay logs carry the device register traffic.
	if t := vm.host.Taps(); t.Active() {
		w := uint64(0)
		if write {
			w = 1
		}
		t.Crossing(faults.OpKVMMMIO,
			faults.NewDigest().U64(uint64(gpa)).U64(uint64(size)).U64(w).U64(value),
			faults.NewDigest().U64(ret), nil)
	}
	return ret
}

func (vm *VM) dispatchMMIOInner(gpa mem.GPA, size int, write bool, value uint64) uint64 {
	c := vm.host.Costs
	sp := vm.trVCPU.Span("kvm", "mmio_exit")
	vm.host.Clock.Advance(c.VMExit)
	vm.mu.Lock()
	vm.ExitsTotal++
	wrap := vm.wrap
	taxed := vm.owner.SyscallTaxed()
	vm.mu.Unlock()
	vm.ctrExits.Inc()

	if taxed {
		// KVM_RUN returned to a ptraced hypervisor: entry+exit stop.
		vm.host.Clock.Advance(2 * c.PtraceStop)
		if wrap != nil && gpa >= wrap.start && gpa < wrap.start+mem.GPA(wrap.size) {
			vm.mu.Lock()
			vm.ExitsToExternal++
			vm.mu.Unlock()
			// The tracer parses the mmap'd kvm_run area, handles the
			// access in the VMSH process and re-enters KVM_RUN.
			vm.host.Clock.Advance(c.ContextSwitch)
			ret := wrap.h.MMIO(gpa, size, write, value)
			vm.host.Clock.Advance(c.Syscall) // re-enter KVM_RUN
			sp.End1("gpa", int64(gpa))
			return ret
		}
	}

	vm.mu.Lock()
	var ior *ioregion
	// Newest registration wins, and regions whose serving socket was
	// closed (handler gone) are dead — the kernel drops an ioregionfd
	// when its fd closes.
	for i := len(vm.ioregions) - 1; i >= 0; i-- {
		r := vm.ioregions[i]
		if gpa >= r.start && gpa < r.start+mem.GPA(r.size) && r.sock.Peer.Handler() != nil {
			ior = r
			break
		}
	}
	vm.mu.Unlock()
	if ior != nil {
		vm.mu.Lock()
		vm.ExitsToExternal++
		vm.mu.Unlock()
		// In-kernel filtering: only this access pays, nothing else.
		vm.host.Clock.Advance(c.IoregionfdMsg + c.ContextSwitch)
		h, _ := ior.sock.Peer.Handler().(MMIOHandler)
		if h != nil {
			ret := h.MMIO(gpa, size, write, value)
			sp.End1("gpa", int64(gpa))
			return ret
		}
		sp.End1("gpa", int64(gpa))
		return ^uint64(0)
	}

	vm.mu.Lock()
	var reg *mmioRegion
	for _, r := range vm.regions {
		if r.contains(gpa) {
			reg = r
			break
		}
	}
	vm.mu.Unlock()
	if reg != nil {
		// Exit to the hypervisor's own userspace loop and back.
		vm.host.Clock.Advance(c.Syscall)
		ret := reg.h.MMIO(gpa, size, write, value)
		sp.End1("gpa", int64(gpa))
		return ret
	}
	// Unclaimed MMIO reads float high, writes are dropped.
	sp.End1("gpa", int64(gpa))
	return ^uint64(0)
}

// VCPU is one virtual CPU.
type VCPU struct {
	vm    *VM
	Index int

	mu    sync.Mutex
	Regs  hostsim.Regs
	Sregs Sregs

	pendingIRQ []uint32
}

// VM returns the owning VM.
func (v *VCPU) VM() *VM { return v.vm }

// GetRegs returns a copy of the register file.
func (v *VCPU) GetRegs() hostsim.Regs {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Regs
}

// SetRegs replaces the register file.
func (v *VCPU) SetRegs(r hostsim.Regs) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.Regs = r
}

// GetSregs returns the special registers.
func (v *VCPU) GetSregs() Sregs {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.Sregs
}

// SetSregs replaces the special registers.
func (v *VCPU) SetSregs(s Sregs) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.Sregs = s
}
