package ksym

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestScanNeverPanicsOnJunk: the scanner consumes attacker-adjacent
// bytes (arbitrary guest memory); whatever it sees, it must return an
// error or a coherent result — never panic, never read out of range.
func TestScanNeverPanicsOnJunk(t *testing.T) {
	prop := func(seed int64, size uint16) bool {
		rnd := rand.New(rand.NewSource(seed))
		img := make([]byte, int(size)+64)
		rnd.Read(img)
		// Sprinkle anchor fragments to drag the scanner deeper.
		if len(img) > 128 {
			copy(img[rnd.Intn(len(img)-32):], "kernel_read\x00")
		}
		res, err := Scan(img, imgBase)
		if err != nil {
			return true
		}
		// If it claims success, the result must be internally sane.
		if len(res.Symbols) == 0 {
			return false
		}
		for name, gva := range res.Symbols {
			if name == "" || uint64(gva)>>47 != 0x1ffff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestScanTruncatedSections: sections cut off mid-entry must not
// confuse the consistency check into bogus symbols.
func TestScanTruncatedSections(t *testing.T) {
	for _, layout := range []Layout{LayoutAbsolute, LayoutPosRel, LayoutPosRelNS} {
		img, _ := buildImage(t, layout)
		// Truncate progressively from the end.
		for cut := len(img) - 1; cut > len(img)-2048; cut -= 127 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%v: panic on truncation at %d: %v", layout, cut, r)
					}
				}()
				res, err := Scan(img[:cut], imgBase)
				if err == nil && len(res.Symbols) == 0 {
					t.Fatalf("%v: empty success at cut %d", layout, cut)
				}
			}()
		}
	}
}

// TestScanPrefersLongestRun: when junk produces a tiny accidental
// match, the real table (longer consecutive run) must win.
func TestScanPrefersLongestRun(t *testing.T) {
	img, want := buildImage(t, LayoutPosRelNS)
	// Craft one fake absolute-layout entry pointing into the strings.
	res, err := Scan(img, imgBase)
	if err != nil {
		t.Fatal(err)
	}
	if res.Layout != LayoutPosRelNS {
		t.Fatalf("layout %v", res.Layout)
	}
	if len(res.Symbols) != len(want) {
		t.Fatalf("%d symbols, want %d", len(res.Symbols), len(want))
	}
}
