package ksym

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vmsh/internal/mem"
)

const imgBase = mem.GVA(0xffffffff81000000)

// testSymbols returns a plausible kernel export set including all
// anchors.
func testSymbols() []Symbol {
	names := []string{
		"filp_open", "filp_close", "kernel_read", "kernel_write",
		"wake_up_process", "kthread_create_on_node", "kthread_stop",
		"schedule", "do_exit", "platform_device_register",
		"register_virtio_mmio_device", "vmalloc", "vfree",
		"printk", "memcpy", "strlen",
	}
	syms := make([]Symbol, len(names))
	for i, n := range names {
		syms[i] = Symbol{Name: n, Value: imgBase + mem.GVA(0x1000+i*0x40)}
	}
	return syms
}

// buildImage embeds the encoded sections into a synthetic kernel image
// window with noise around them, mimicking image bytes.
func buildImage(t *testing.T, layout Layout) ([]byte, map[string]mem.GVA) {
	t.Helper()
	img := make([]byte, 256*1024)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(img)
	// Avoid the noise accidentally containing anchor strings: zero a guard.
	tabOff, strOff := 0x20000, 0x30000
	syms := testSymbols()
	sec, err := Build(layout, syms, imgBase+mem.GVA(tabOff), imgBase+mem.GVA(strOff))
	if err != nil {
		t.Fatal(err)
	}
	// Clear margins so section boundaries are crisp.
	for i := tabOff - 64; i < tabOff+len(sec.Tab)+64; i++ {
		img[i] = 0
	}
	for i := strOff - 64; i < strOff+len(sec.Strings)+64; i++ {
		img[i] = 0
	}
	copy(img[tabOff:], sec.Tab)
	copy(img[strOff:], sec.Strings)
	want := make(map[string]mem.GVA, len(syms))
	for _, s := range syms {
		want[s.Name] = s.Value
	}
	return img, want
}

func TestScanAllLayouts(t *testing.T) {
	for _, layout := range []Layout{LayoutAbsolute, LayoutPosRel, LayoutPosRelNS} {
		t.Run(layout.String(), func(t *testing.T) {
			img, want := buildImage(t, layout)
			res, err := Scan(img, imgBase)
			if err != nil {
				t.Fatal(err)
			}
			if res.Layout != layout {
				t.Fatalf("detected layout %v, want %v", res.Layout, layout)
			}
			for name, gva := range want {
				got, ok := res.Symbols[name]
				if !ok {
					t.Fatalf("symbol %q missing", name)
				}
				if got != gva {
					t.Fatalf("symbol %q = %#x, want %#x", name, got, gva)
				}
			}
			if len(res.Symbols) != len(want) {
				t.Fatalf("recovered %d symbols, want %d", len(res.Symbols), len(want))
			}
		})
	}
}

func TestScanNoAnchors(t *testing.T) {
	img := make([]byte, 4096)
	if _, err := Scan(img, imgBase); err == nil {
		t.Fatal("scan of empty image succeeded")
	}
}

func TestScanStringsWithoutTable(t *testing.T) {
	img := make([]byte, 8192)
	copy(img[100:], "kernel_read\x00filp_open\x00")
	if _, err := Scan(img, imgBase); err == nil {
		t.Fatal("scan without a table succeeded")
	}
}

func TestBuildRejectsBadNames(t *testing.T) {
	if _, err := Build(LayoutPosRel, []Symbol{{Name: ""}}, imgBase, imgBase+0x1000); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := Build(LayoutPosRel, []Symbol{{Name: "a\x00b"}}, imgBase, imgBase+0x1000); err == nil {
		t.Fatal("NUL in name accepted")
	}
	dup := []Symbol{{Name: "x", Value: imgBase}, {Name: "x", Value: imgBase}}
	if _, err := Build(LayoutPosRel, dup, imgBase, imgBase+0x1000); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestEntrySizes(t *testing.T) {
	if LayoutAbsolute.EntrySize() != 16 || LayoutPosRel.EntrySize() != 8 || LayoutPosRelNS.EntrySize() != 12 {
		t.Fatal("entry sizes drifted from the kernel ABI")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Build->Scan recovers every symbol for random value
	// placements, in every layout.
	layouts := []Layout{LayoutAbsolute, LayoutPosRel, LayoutPosRelNS}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		layout := layouts[rnd.Intn(len(layouts))]
		syms := testSymbols()
		for i := range syms {
			syms[i].Value = imgBase + mem.GVA(rnd.Intn(1<<20)&^7)
		}
		img := make([]byte, 128*1024)
		tabOff, strOff := 0x8000, 0x10000
		sec, err := Build(layout, syms, imgBase+mem.GVA(tabOff), imgBase+mem.GVA(strOff))
		if err != nil {
			return false
		}
		copy(img[tabOff:], sec.Tab)
		copy(img[strOff:], sec.Strings)
		res, err := Scan(img, imgBase)
		if err != nil {
			return false
		}
		for _, s := range syms {
			if res.Symbols[s.Name] != s.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
