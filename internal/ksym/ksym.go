// Package ksym encodes and recovers Linux kernel export tables
// (.ksymtab / .ksymtab_strings).
//
// The guest kernel writes these sections into its image at boot using
// the layout its version actually used; the VMSH sideloader, which has
// no a-priori knowledge of the version, recovers the exported symbol
// addresses by scanning the image bytes with the consistency-check
// approach described in the paper (§4.2, §6.2): every candidate layout
// is validated in parallel by checking whether name references resolve
// to valid strings.
package ksym

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"vmsh/internal/mem"
)

// Layout enumerates the on-disk ksymtab entry encodings that shipped
// in the LTS kernels the paper tests. The layout changed twice across
// the 4.4 - 5.10 span.
type Layout int

const (
	// LayoutAbsolute: struct kernel_symbol { u64 value; u64 name; }
	// (v4.4, v4.9, v4.14).
	LayoutAbsolute Layout = iota
	// LayoutPosRel: { s32 value_offset; s32 name_offset; } with
	// PREL32 relocations (v4.19).
	LayoutPosRel
	// LayoutPosRelNS: { s32 value_offset; s32 name_offset;
	// s32 namespace_offset; } (v5.4, v5.10+).
	LayoutPosRelNS
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutAbsolute:
		return "absolute"
	case LayoutPosRel:
		return "prel32"
	case LayoutPosRelNS:
		return "prel32-ns"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// EntrySize returns the byte size of one table entry in this layout.
func (l Layout) EntrySize() int {
	switch l {
	case LayoutAbsolute:
		return 16
	case LayoutPosRel:
		return 8
	case LayoutPosRelNS:
		return 12
	default:
		panic("ksym: unknown layout")
	}
}

// Symbol is one exported kernel symbol.
type Symbol struct {
	Name  string
	Value mem.GVA
}

// Sections holds the encoded bytes plus the in-image offsets chosen by
// the builder; the guest kernel copies them into its image.
type Sections struct {
	Layout     Layout
	Tab        []byte // .ksymtab
	Strings    []byte // .ksymtab_strings
	TabGVA     mem.GVA
	StringsGVA mem.GVA
}

// Build encodes syms for the given layout. tabGVA and stringsGVA are
// the virtual addresses the sections will occupy in the guest image
// (needed because two of the layouts store position-relative offsets
// and one stores absolute addresses). Symbols are emitted sorted by
// name, matching the kernel's export sorting.
func Build(layout Layout, syms []Symbol, tabGVA, stringsGVA mem.GVA) (*Sections, error) {
	sorted := make([]Symbol, len(syms))
	copy(sorted, syms)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })

	strOff := make(map[string]uint64, len(sorted))
	var sb []byte
	for _, s := range sorted {
		if s.Name == "" || strings.ContainsRune(s.Name, 0) {
			return nil, fmt.Errorf("ksym: invalid symbol name %q", s.Name)
		}
		if _, dup := strOff[s.Name]; dup {
			return nil, fmt.Errorf("ksym: duplicate symbol %q", s.Name)
		}
		strOff[s.Name] = uint64(len(sb))
		sb = append(sb, s.Name...)
		sb = append(sb, 0)
	}

	es := layout.EntrySize()
	tab := make([]byte, es*len(sorted))
	for i, s := range sorted {
		e := tab[i*es:]
		entryGVA := tabGVA + mem.GVA(i*es)
		nameGVA := stringsGVA + mem.GVA(strOff[s.Name])
		switch layout {
		case LayoutAbsolute:
			binary.LittleEndian.PutUint64(e[0:], uint64(s.Value))
			binary.LittleEndian.PutUint64(e[8:], uint64(nameGVA))
		case LayoutPosRel:
			binary.LittleEndian.PutUint32(e[0:], uint32(int32(int64(s.Value)-int64(entryGVA))))
			binary.LittleEndian.PutUint32(e[4:], uint32(int32(int64(nameGVA)-int64(entryGVA)-4)))
		case LayoutPosRelNS:
			binary.LittleEndian.PutUint32(e[0:], uint32(int32(int64(s.Value)-int64(entryGVA))))
			binary.LittleEndian.PutUint32(e[4:], uint32(int32(int64(nameGVA)-int64(entryGVA)-4)))
			binary.LittleEndian.PutUint32(e[8:], 0) // no namespace
		}
	}
	return &Sections{Layout: layout, Tab: tab, Strings: sb, TabGVA: tabGVA, StringsGVA: stringsGVA}, nil
}

// Anchors are exported names the scanner searches for first; they are
// stable across every kernel version VMSH supports, so finding any of
// them pins down .ksymtab_strings.
var Anchors = []string{"filp_open", "kernel_read", "wake_up_process"}

// ScanResult is the outcome of recovering the export table from raw
// image bytes.
type ScanResult struct {
	Layout     Layout
	Symbols    map[string]mem.GVA
	StringsGVA mem.GVA
	TabGVA     mem.GVA
	TabLen     int // bytes
}

// Scan recovers the symbol table from an image window. img holds the
// raw bytes of the kernel image as read out of guest memory and base
// is the GVA of img[0]. Scan locates .ksymtab_strings via the anchor
// names, then tries every layout in parallel, keeping the one whose
// candidate table has the most consecutively valid entries — the
// "checking whether a kernel symbol name points to a valid string"
// consistency check from the paper.
func Scan(img []byte, base mem.GVA) (*ScanResult, error) {
	strStart, strEnd := findStrings(img)
	if strStart < 0 {
		return nil, fmt.Errorf("ksym: no .ksymtab_strings anchor found in %d-byte window", len(img))
	}
	type cand struct {
		layout Layout
		start  int
		count  int
	}
	var best *cand
	for _, layout := range []Layout{LayoutAbsolute, LayoutPosRel, LayoutPosRelNS} {
		start, count := findTable(img, base, layout, strStart, strEnd)
		if count == 0 {
			continue
		}
		if best == nil || count > best.count {
			best = &cand{layout: layout, start: start, count: count}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("ksym: strings section found at +%#x but no ksymtab matches any layout", strStart)
	}
	res := &ScanResult{
		Layout:     best.layout,
		Symbols:    make(map[string]mem.GVA, best.count),
		StringsGVA: base + mem.GVA(strStart),
		TabGVA:     base + mem.GVA(best.start),
		TabLen:     best.count * best.layout.EntrySize(),
	}
	es := best.layout.EntrySize()
	for i := 0; i < best.count; i++ {
		off := best.start + i*es
		name, value, ok := decodeEntry(img, base, best.layout, off, strStart, strEnd)
		if !ok {
			return nil, fmt.Errorf("ksym: entry %d became invalid during decode", i)
		}
		res.Symbols[name] = value
	}
	return res, nil
}

// findStrings locates a plausible [start, end) window of the strings
// section: the region of consecutive printable C strings surrounding
// the first anchor hit.
func findStrings(img []byte) (int, int) {
	hit := -1
	for _, a := range Anchors {
		needle := append(append([]byte{0}, a...), 0)
		if i := indexBytes(img, needle); i >= 0 {
			hit = i + 1
			break
		}
		// Anchor may also sit at the very start of the section.
		needle = append([]byte(a), 0)
		if i := indexBytes(img, needle); i >= 0 {
			hit = i
			break
		}
	}
	if hit < 0 {
		return -1, -1
	}
	start := hit
	for start > 0 && isStringByte(img[start-1]) {
		start--
	}
	// Extend backwards over whole NUL-terminated strings.
	for start > 0 {
		p := start - 1
		if img[p] != 0 {
			break
		}
		q := p
		for q > 0 && isStringByte(img[q-1]) {
			q--
		}
		if q == p { // empty string: treat as section edge
			break
		}
		start = q
	}
	end := hit
	for end < len(img) {
		q := end
		for q < len(img) && isStringByte(img[q]) {
			q++
		}
		if q == end || q >= len(img) || img[q] != 0 {
			break
		}
		end = q + 1
	}
	return start, end
}

func isStringByte(b byte) bool {
	return b == '_' || b == '.' || b == '-' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

func indexBytes(hay, needle []byte) int {
	return strings.Index(string(hay), string(needle))
}

// findTable scans img for the longest run of entries in the given
// layout whose name references land on string starts inside the
// strings window.
func findTable(img []byte, base mem.GVA, layout Layout, strStart, strEnd int) (start, count int) {
	es := layout.EntrySize()
	align := 4
	if layout == LayoutAbsolute {
		align = 8
	}
	bestStart, bestCount := 0, 0
	i := 0
	for i+es <= len(img) {
		if _, _, ok := decodeEntry(img, base, layout, i, strStart, strEnd); !ok {
			i += align
			continue
		}
		runStart := i
		run := 0
		for i+es <= len(img) {
			if _, _, ok := decodeEntry(img, base, layout, i, strStart, strEnd); !ok {
				break
			}
			run++
			i += es
		}
		if run > bestCount {
			bestStart, bestCount = runStart, run
		}
		i += align
	}
	return bestStart, bestCount
}

// decodeEntry validates and decodes one candidate entry at img[off:].
func decodeEntry(img []byte, base mem.GVA, layout Layout, off, strStart, strEnd int) (string, mem.GVA, bool) {
	es := layout.EntrySize()
	if off+es > len(img) {
		return "", 0, false
	}
	var nameGVA, valueGVA mem.GVA
	switch layout {
	case LayoutAbsolute:
		valueGVA = mem.GVA(binary.LittleEndian.Uint64(img[off:]))
		nameGVA = mem.GVA(binary.LittleEndian.Uint64(img[off+8:]))
	case LayoutPosRel, LayoutPosRelNS:
		entryGVA := base + mem.GVA(off)
		valueGVA = entryGVA + mem.GVA(int64(int32(binary.LittleEndian.Uint32(img[off:]))))
		nameGVA = entryGVA + 4 + mem.GVA(int64(int32(binary.LittleEndian.Uint32(img[off+4:]))))
	}
	nameOff := int64(nameGVA) - int64(base)
	if nameOff < int64(strStart) || nameOff >= int64(strEnd) {
		return "", 0, false
	}
	// Must be the *start* of a string: preceded by NUL or section start.
	if nameOff > int64(strStart) && img[nameOff-1] != 0 {
		return "", 0, false
	}
	end := nameOff
	for end < int64(strEnd) && img[end] != 0 {
		if !isStringByte(img[end]) {
			return "", 0, false
		}
		end++
	}
	if end == nameOff || end >= int64(strEnd) {
		return "", 0, false
	}
	// Value must point somewhere plausible: canonical high-half.
	if uint64(valueGVA)>>47 != 0x1ffff {
		return "", 0, false
	}
	return string(img[nameOff:end]), valueGVA, true
}
