package ksym

import (
	"strings"
	"testing"

	"vmsh/internal/mem"
)

// FuzzKsymtabParse feeds the ksymtab scanner arbitrary image windows —
// the bytes it reads are plucked out of guest memory by KASLR-range
// probing, so in the worst case they are attacker-chosen. Whatever it
// sees, Scan must return an error or an internally coherent result:
// non-empty NUL-free names, values in the canonical kernel half, a
// table window that lies inside the image. Never a panic.
func FuzzKsymtabParse(f *testing.F) {
	// Seed with a real built image per layout (truncated to keep the
	// corpus small: the strings+table area is what matters).
	for _, layout := range []Layout{LayoutAbsolute, LayoutPosRel, LayoutPosRelNS} {
		syms := testSymbols()
		sec, err := Build(layout, syms, imgBase+mem.GVA(0x800), imgBase+mem.GVA(0x4000))
		if err != nil {
			f.Fatal(err)
		}
		img := make([]byte, 0x4000+len(sec.Strings)+64)
		copy(img[0x800:], sec.Tab)
		copy(img[0x4000:], sec.Strings)
		f.Add(img)
	}
	f.Add([]byte("kernel_read\x00filp_open\x00"))
	f.Add(make([]byte, 64))

	f.Fuzz(func(t *testing.T, img []byte) {
		res, err := Scan(img, imgBase)
		if err != nil {
			return
		}
		if len(res.Symbols) == 0 {
			t.Fatal("Scan succeeded with zero symbols")
		}
		if res.TabLen <= 0 || res.TabLen != len(res.Symbols)*res.Layout.EntrySize() {
			// Duplicate names can legally collapse map entries, so only
			// a table shorter than the map is impossible.
			if res.TabLen < len(res.Symbols)*res.Layout.EntrySize() {
				t.Fatalf("table %dB cannot hold %d entries of %dB",
					res.TabLen, len(res.Symbols), res.Layout.EntrySize())
			}
		}
		tabOff := int(res.TabGVA - imgBase)
		if tabOff < 0 || tabOff+res.TabLen > len(img) {
			t.Fatalf("claimed table [%d,+%d) outside %d-byte image", tabOff, res.TabLen, len(img))
		}
		strOff := int(res.StringsGVA - imgBase)
		if strOff < 0 || strOff >= len(img) {
			t.Fatalf("claimed strings at %d outside %d-byte image", strOff, len(img))
		}
		for name, gva := range res.Symbols {
			if name == "" || strings.ContainsRune(name, 0) {
				t.Fatalf("invalid symbol name %q", name)
			}
			if uint64(gva)>>47 != 0x1ffff {
				t.Fatalf("symbol %q outside the canonical kernel half: %#x", name, uint64(gva))
			}
		}
	})
}
