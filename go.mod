module vmsh

go 1.22
